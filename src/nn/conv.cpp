#include "nn/conv.hpp"

#include "tensor/ops.hpp"

namespace selsync {

Conv2d::Conv2d(size_t in_channels, size_t out_channels, size_t kernel,
               size_t pad, Rng& rng, const std::string& name)
    : pad_(pad),
      name_(name),
      weight_(name + ".weight",
              Tensor::kaiming({out_channels, in_channels, kernel, kernel}, rng,
                              in_channels * kernel * kernel)),
      bias_(name + ".bias", Tensor({out_channels})) {}

Tensor Conv2d::forward(const Tensor& input) {
  cached_input_ = input;
  return ops::conv2d(input, weight_.value, bias_.value, pad_);
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  Tensor grad_input, grad_weight, grad_bias;
  ops::conv2d_backward(cached_input_, weight_.value, pad_, grad_out,
                       grad_input, grad_weight, grad_bias);
  weight_.grad.add_(grad_weight);
  bias_.grad.add_(grad_bias);
  return grad_input;
}

void Conv2d::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

Tensor MaxPool2x2::forward(const Tensor& input) {
  input_shape_ = input.shape();
  return ops::maxpool2x2(input, argmax_);
}

Tensor MaxPool2x2::backward(const Tensor& grad_out) {
  return ops::maxpool2x2_backward(grad_out, argmax_, input_shape_);
}

Tensor AvgPool2x2::forward(const Tensor& input) {
  input_shape_ = input.shape();
  const size_t N = input.dim(0), C = input.dim(1), H = input.dim(2),
               W = input.dim(3);
  const size_t Ho = H / 2, Wo = W / 2;
  Tensor out({N, C, Ho, Wo});
  size_t oi = 0;
  for (size_t nc = 0; nc < N * C; ++nc) {
    const float* in = input.data() + nc * H * W;
    for (size_t oy = 0; oy < Ho; ++oy)
      for (size_t ox = 0; ox < Wo; ++ox, ++oi)
        out[oi] = 0.25f * (in[(oy * 2) * W + ox * 2] +
                           in[(oy * 2) * W + ox * 2 + 1] +
                           in[(oy * 2 + 1) * W + ox * 2] +
                           in[(oy * 2 + 1) * W + ox * 2 + 1]);
  }
  return out;
}

Tensor AvgPool2x2::backward(const Tensor& grad_out) {
  Tensor grad_in(input_shape_);
  const size_t N = input_shape_[0], C = input_shape_[1], H = input_shape_[2],
               W = input_shape_[3];
  const size_t Ho = H / 2, Wo = W / 2;
  size_t oi = 0;
  for (size_t nc = 0; nc < N * C; ++nc) {
    float* gi = grad_in.data() + nc * H * W;
    for (size_t oy = 0; oy < Ho; ++oy)
      for (size_t ox = 0; ox < Wo; ++ox, ++oi) {
        const float g = 0.25f * grad_out[oi];
        gi[(oy * 2) * W + ox * 2] += g;
        gi[(oy * 2) * W + ox * 2 + 1] += g;
        gi[(oy * 2 + 1) * W + ox * 2] += g;
        gi[(oy * 2 + 1) * W + ox * 2 + 1] += g;
      }
  }
  return grad_in;
}

Tensor GlobalAvgPool::forward(const Tensor& input) {
  input_shape_ = input.shape();
  const size_t N = input.dim(0), C = input.dim(1);
  const size_t hw = input.dim(2) * input.dim(3);
  Tensor out({N, C});
  for (size_t nc = 0; nc < N * C; ++nc) {
    const float* in = input.data() + nc * hw;
    float acc = 0.f;
    for (size_t i = 0; i < hw; ++i) acc += in[i];
    out[nc] = acc / static_cast<float>(hw);
  }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  Tensor grad_in(input_shape_);
  const size_t N = input_shape_[0], C = input_shape_[1];
  const size_t hw = input_shape_[2] * input_shape_[3];
  const float inv = 1.f / static_cast<float>(hw);
  for (size_t nc = 0; nc < N * C; ++nc) {
    float* gi = grad_in.data() + nc * hw;
    const float g = grad_out[nc] * inv;
    for (size_t i = 0; i < hw; ++i) gi[i] += g;
  }
  return grad_in;
}

Tensor Flatten::forward(const Tensor& input) {
  input_shape_ = input.shape();
  const size_t n = input.dim(0);
  return input.reshaped({n, input.size() / n});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(input_shape_);
}

}  // namespace selsync
