#include "nn/classifier.hpp"

#include <stdexcept>

namespace selsync {

ClassifierModel::ClassifierModel(std::unique_ptr<Sequential> net,
                                 size_t num_classes)
    : net_(std::move(net)), num_classes_(num_classes) {
  if (!net_) throw std::invalid_argument("ClassifierModel: null net");
}

float ClassifierModel::train_step(const Batch& batch) {
  zero_grad();
  const Tensor logits = net_->forward(batch.x);
  LossResult loss = softmax_cross_entropy(logits, batch.targets);
  net_->backward(loss.grad_logits);
  return loss.loss;
}

EvalStats ClassifierModel::eval_batch(const Batch& batch) {
  net_->set_training(false);
  const Tensor logits = net_->forward(batch.x);
  net_->set_training(true);
  const LossResult loss = softmax_cross_entropy(logits, batch.targets);
  EvalStats stats;
  stats.loss_sum = loss.loss;
  stats.batches = 1;
  stats.examples = batch.targets.size();
  stats.top1 = count_top1(logits, batch.targets);
  stats.top5 = count_topk(logits, batch.targets, 5);
  return stats;
}

}  // namespace selsync
