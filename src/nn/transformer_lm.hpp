// Causal Transformer-encoder language model (the paper's WikiText-103
// workload, scaled down: same 2-layer/2-head shape class, smaller dims).
#pragma once

#include "nn/embedding.hpp"
#include "nn/model.hpp"
#include "nn/sequential.hpp"

namespace selsync {

struct TransformerConfig {
  size_t vocab = 64;
  size_t model_dim = 32;
  size_t ff_dim = 64;
  size_t num_heads = 2;
  size_t num_layers = 2;
  size_t seq_len = 16;  // the paper's bptt window
  float dropout = 0.2f;
};

class TransformerLM : public Model {
 public:
  TransformerLM(const TransformerConfig& config, uint64_t seed);

  /// batch.tokens: inputs (B*T); batch.targets: next-token ids (B*T).
  float train_step(const Batch& batch) override;
  EvalStats eval_batch(const Batch& batch) override;
  void set_training(bool training) override;
  bool is_language_model() const override { return true; }

  const TransformerConfig& config() const { return config_; }

 protected:
  void collect_model_params(std::vector<Param*>& out) override;

 private:
  Tensor forward_logits(const std::vector<int>& tokens);
  float backward_from_loss(const Tensor& grad_logits);

  TransformerConfig config_;
  Rng rng_;
  Embedding embedding_;
  std::unique_ptr<Sequential> encoder_;  // pre-norm residual blocks
  std::unique_ptr<Module> decoder_;      // D -> vocab
};

}  // namespace selsync
