#include "nn/summary.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace selsync {

std::vector<ParamSummary> summarize_params(Model& model) {
  std::vector<ParamSummary> rows;
  for (const Param* p : model.params()) {
    ParamSummary row;
    row.name = p->name;
    row.shape = p->value.shape_str();
    row.count = p->value.size();
    row.value_rms =
        row.count ? std::sqrt(p->value.sq_norm() / row.count) : 0.0;
    row.grad_rms = row.count ? std::sqrt(p->grad.sq_norm() / row.count) : 0.0;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string describe_model(Model& model) {
  std::ostringstream out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-32s %-14s %10s %12s %12s\n", "param",
                "shape", "count", "value RMS", "grad RMS");
  out << line;
  size_t total = 0;
  for (const ParamSummary& row : summarize_params(model)) {
    std::snprintf(line, sizeof(line), "%-32s %-14s %10zu %12.4g %12.4g\n",
                  row.name.c_str(), row.shape.c_str(), row.count,
                  row.value_rms, row.grad_rms);
    out << line;
    total += row.count;
  }
  std::snprintf(line, sizeof(line),
                "total: %zu parameters (%.2f KB per exchange)\n", total,
                static_cast<double>(total) * sizeof(float) / 1024.0);
  out << line;
  return out.str();
}

}  // namespace selsync
