// Fully-connected layer: y = x W^T + b, x is {batch, in}, W is {out, in}.
#pragma once

#include "nn/module.hpp"

namespace selsync {

class Linear : public Module {
 public:
  Linear(size_t in_features, size_t out_features, Rng& rng,
         bool bias = true, const std::string& name = "linear");

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return name_; }

  size_t in_features() const { return in_; }
  size_t out_features() const { return out_; }

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  bool has_bias() const { return has_bias_; }

 private:
  size_t in_, out_;
  bool has_bias_;
  std::string name_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;
};

}  // namespace selsync
