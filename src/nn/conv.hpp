// Convolutional layers (NCHW, stride 1) plus pooling and flatten.
#pragma once

#include "nn/module.hpp"

namespace selsync {

class Conv2d : public Module {
 public:
  Conv2d(size_t in_channels, size_t out_channels, size_t kernel, size_t pad,
         Rng& rng, const std::string& name = "conv");

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param*>& out) override;
  std::string name() const override { return name_; }

 private:
  size_t pad_;
  std::string name_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;
};

class MaxPool2x2 : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "maxpool2x2"; }

 private:
  std::vector<uint32_t> argmax_;
  std::vector<size_t> input_shape_;
};

/// 2x2 average pooling with stride 2.
class AvgPool2x2 : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "avgpool2x2"; }

 private:
  std::vector<size_t> input_shape_;
};

/// Global average pooling: {N, C, H, W} -> {N, C}.
class GlobalAvgPool : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "globalavgpool"; }

 private:
  std::vector<size_t> input_shape_;
};

/// {N, C, H, W} -> {N, C*H*W}.
class Flatten : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "flatten"; }

 private:
  std::vector<size_t> input_shape_;
};

}  // namespace selsync
