#include "nn/linear.hpp"

#include "tensor/ops.hpp"

namespace selsync {

Linear::Linear(size_t in_features, size_t out_features, Rng& rng, bool bias,
               const std::string& name)
    : in_(in_features),
      out_(out_features),
      has_bias_(bias),
      name_(name),
      weight_(name + ".weight",
              Tensor::xavier({out_features, in_features}, rng, in_features,
                             out_features)),
      bias_(name + ".bias", Tensor({out_features})) {}

Tensor Linear::forward(const Tensor& input) {
  cached_input_ = input;
  Tensor out = ops::matmul_nt(input, weight_.value);  // {B,in} x {out,in}^T
  if (has_bias_) ops::add_row_bias(out, bias_.value);
  return out;
}

Tensor Linear::backward(const Tensor& grad_out) {
  // dW = grad_out^T (B x out) * input (B x in) -> {out, in}
  weight_.grad.add_(ops::matmul_tn(grad_out, cached_input_));
  if (has_bias_) bias_.grad.add_(ops::sum_rows(grad_out));
  // dX = grad_out (B x out) * W (out x in)
  return ops::matmul(grad_out, weight_.value);
}

void Linear::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight_);
  if (has_bias_) out.push_back(&bias_);
}

}  // namespace selsync
