#include "nn/sequential.hpp"

namespace selsync {

Sequential& Sequential::add(ModulePtr layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& input) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

void Sequential::collect_params(std::vector<Param*>& out) {
  for (auto& layer : layers_) layer->collect_params(out);
}

void Sequential::set_training(bool training) {
  for (auto& layer : layers_) layer->set_training(training);
}

Tensor Residual::forward(const Tensor& input) {
  Tensor out = inner_->forward(input);
  out.add_(input);
  return out;
}

Tensor Residual::backward(const Tensor& grad_out) {
  Tensor g = inner_->backward(grad_out);
  g.add_(grad_out);
  return g;
}

void Residual::collect_params(std::vector<Param*>& out) {
  inner_->collect_params(out);
}

}  // namespace selsync
