// Classification model: an arbitrary Module stack followed by softmax
// cross-entropy.
#pragma once

#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "nn/sequential.hpp"

namespace selsync {

class ClassifierModel : public Model {
 public:
  /// `net` must map the batch input to {B, num_classes} logits.
  ClassifierModel(std::unique_ptr<Sequential> net, size_t num_classes);

  float train_step(const Batch& batch) override;
  EvalStats eval_batch(const Batch& batch) override;
  void set_training(bool training) override { net_->set_training(training); }

  Sequential& net() { return *net_; }
  size_t num_classes() const { return num_classes_; }

 protected:
  void collect_model_params(std::vector<Param*>& out) override {
    net_->collect_params(out);
  }

 private:
  std::unique_ptr<Sequential> net_;
  size_t num_classes_;
};

}  // namespace selsync
