// Elementwise activation layers.
#pragma once

#include "nn/module.hpp"

namespace selsync {

class ReLU : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "relu"; }

 private:
  Tensor cached_input_;
};

class Tanh : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "tanh"; }

 private:
  Tensor cached_output_;
};

/// Gaussian Error Linear Unit, tanh approximation (as used by transformer
/// stacks).
class GELU : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "gelu"; }

 private:
  Tensor cached_input_;
};

}  // namespace selsync
