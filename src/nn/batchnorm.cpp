#include "nn/batchnorm.hpp"

#include <cmath>
#include <stdexcept>

namespace selsync {

BatchNorm1d::BatchNorm1d(size_t features, const std::string& name, float eps,
                         float momentum)
    : features_(features),
      eps_(eps),
      momentum_(momentum),
      name_(name),
      gamma_(name + ".gamma", Tensor::full({features}, 1.f)),
      beta_(name + ".beta", Tensor({features})),
      running_mean_(features, 0.f),
      running_var_(features, 1.f) {}

Tensor BatchNorm1d::forward(const Tensor& input) {
  if (input.rank() != 2 || input.dim(1) != features_)
    throw std::invalid_argument("BatchNorm1d: expected {B, " +
                                std::to_string(features_) + "} input");
  const size_t rows = input.dim(0);
  Tensor out(input.shape());

  if (training_) {
    if (rows < 2)
      throw std::invalid_argument("BatchNorm1d: batch of >= 2 required");
    cached_rows_ = rows;
    cached_norm_ = Tensor(input.shape());
    inv_std_.assign(features_, 0.f);
    for (size_t j = 0; j < features_; ++j) {
      double mean = 0.0;
      for (size_t r = 0; r < rows; ++r) mean += input.at(r, j);
      mean /= rows;
      double var = 0.0;
      for (size_t r = 0; r < rows; ++r) {
        const double d = input.at(r, j) - mean;
        var += d * d;
      }
      var /= rows;
      const float inv = 1.f / std::sqrt(static_cast<float>(var) + eps_);
      inv_std_[j] = inv;
      for (size_t r = 0; r < rows; ++r) {
        const float xhat = (input.at(r, j) - static_cast<float>(mean)) * inv;
        cached_norm_.at(r, j) = xhat;
        out.at(r, j) = gamma_.value[j] * xhat + beta_.value[j];
      }
      running_mean_[j] = (1.f - momentum_) * running_mean_[j] +
                         momentum_ * static_cast<float>(mean);
      running_var_[j] = (1.f - momentum_) * running_var_[j] +
                        momentum_ * static_cast<float>(var);
    }
  } else {
    for (size_t j = 0; j < features_; ++j) {
      const float inv = 1.f / std::sqrt(running_var_[j] + eps_);
      for (size_t r = 0; r < rows; ++r)
        out.at(r, j) =
            gamma_.value[j] * (input.at(r, j) - running_mean_[j]) * inv +
            beta_.value[j];
    }
  }
  return out;
}

Tensor BatchNorm1d::backward(const Tensor& grad_out) {
  if (cached_rows_ == 0)
    throw std::logic_error("BatchNorm1d: backward before training forward");
  const size_t rows = cached_rows_;
  Tensor grad_in(grad_out.shape());
  const float inv_n = 1.f / static_cast<float>(rows);
  for (size_t j = 0; j < features_; ++j) {
    float sum_g = 0.f, sum_gx = 0.f;
    for (size_t r = 0; r < rows; ++r) {
      const float go = grad_out.at(r, j);
      sum_g += go;
      sum_gx += go * cached_norm_.at(r, j);
      gamma_.grad[j] += go * cached_norm_.at(r, j);
      beta_.grad[j] += go;
    }
    const float g = gamma_.value[j];
    for (size_t r = 0; r < rows; ++r) {
      const float go = grad_out.at(r, j);
      grad_in.at(r, j) =
          g * inv_std_[j] *
          (go - inv_n * sum_g - cached_norm_.at(r, j) * inv_n * sum_gx);
    }
  }
  return grad_in;
}

void BatchNorm1d::collect_params(std::vector<Param*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

}  // namespace selsync
