#include "comm/network_sim.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace selsync {

NetworkSimulator::NetworkSimulator(std::vector<double> nic_bandwidth_bps,
                                   double latency_s)
    : egress_bw_(nic_bandwidth_bps),
      ingress_bw_(std::move(nic_bandwidth_bps)),
      latency_s_(latency_s) {
  if (egress_bw_.empty())
    throw std::invalid_argument("NetworkSimulator: no nodes");
  for (double bw : egress_bw_)
    if (bw <= 0) throw std::invalid_argument("NetworkSimulator: bad NIC bw");
}

size_t NetworkSimulator::submit(size_t src, size_t dst, double bytes,
                                double start_time_s) {
  if (src >= node_count() || dst >= node_count())
    throw std::out_of_range("NetworkSimulator: bad node id");
  if (bytes <= 0) throw std::invalid_argument("NetworkSimulator: bytes <= 0");
  Flow f;
  f.src = src;
  f.dst = dst;
  f.bytes_remaining = bytes * 8.0;  // track bits against bps capacities
  f.start_time = start_time_s + latency_s_;  // propagation before first bit
  flows_.push_back(f);
  return flows_.size() - 1;
}

void NetworkSimulator::assign_rates(std::vector<Flow*>& active) {
  // Progressive filling: repeatedly find the most contended link, give each
  // of its unfrozen flows an equal share, freeze them, subtract, repeat.
  std::vector<double> egress_left = egress_bw_;
  std::vector<double> ingress_left = ingress_bw_;
  std::vector<Flow*> unfrozen = active;
  for (Flow* f : unfrozen) f->rate = 0.0;

  while (!unfrozen.empty()) {
    // Count unfrozen flows per link and find the bottleneck share.
    std::vector<size_t> egress_count(node_count(), 0);
    std::vector<size_t> ingress_count(node_count(), 0);
    for (const Flow* f : unfrozen) {
      ++egress_count[f->src];
      ++ingress_count[f->dst];
    }
    double min_share = std::numeric_limits<double>::infinity();
    for (size_t n = 0; n < node_count(); ++n) {
      if (egress_count[n])
        min_share = std::min(min_share, egress_left[n] / egress_count[n]);
      if (ingress_count[n])
        min_share = std::min(min_share, ingress_left[n] / ingress_count[n]);
    }
    // Freeze every flow crossing a bottleneck link at min_share.
    std::vector<Flow*> next;
    for (Flow* f : unfrozen) {
      const bool src_tight =
          egress_left[f->src] / egress_count[f->src] <= min_share + 1e-9;
      const bool dst_tight =
          ingress_left[f->dst] / ingress_count[f->dst] <= min_share + 1e-9;
      if (src_tight || dst_tight) {
        f->rate = min_share;
        egress_left[f->src] -= min_share;
        ingress_left[f->dst] -= min_share;
      } else {
        next.push_back(f);
      }
    }
    if (next.size() == unfrozen.size()) {
      // Numerical stall: give everyone the min share and stop.
      for (Flow* f : next) f->rate = min_share;
      break;
    }
    unfrozen = std::move(next);
  }
}

double NetworkSimulator::run() {
  double now = 0.0;
  double makespan = 0.0;
  for (;;) {
    // Activate flows whose start time has arrived; find the next start.
    std::vector<Flow*> active;
    double next_start = std::numeric_limits<double>::infinity();
    for (Flow& f : flows_) {
      if (f.done) continue;
      if (f.start_time <= now + 1e-12) {
        f.active = true;
        active.push_back(&f);
      } else {
        next_start = std::min(next_start, f.start_time);
      }
    }
    if (active.empty()) {
      if (next_start == std::numeric_limits<double>::infinity()) break;
      now = next_start;
      continue;
    }

    assign_rates(active);

    // Advance to the earliest of: a flow finishing, or a new flow starting.
    double dt = next_start - now;
    for (const Flow* f : active)
      if (f->rate > 0)
        dt = std::min(dt, f->bytes_remaining / f->rate);
    if (!(dt > 0) || dt == std::numeric_limits<double>::infinity())
      throw std::logic_error("NetworkSimulator: stalled event loop");

    now += dt;
    for (Flow* f : active) {
      f->bytes_remaining -= f->rate * dt;
      if (f->bytes_remaining <= 1e-6) {
        f->done = true;
        f->active = false;
        f->completion = now;
        makespan = std::max(makespan, now);
      }
    }
  }
  return makespan;
}

double NetworkSimulator::completion_time(size_t flow_id) const {
  const Flow& f = flows_.at(flow_id);
  if (!f.done)
    throw std::logic_error("NetworkSimulator: flow not completed (run() it)");
  return f.completion;
}

void NetworkSimulator::clear() { flows_.clear(); }

double des_ps_sync_time(size_t workers, double bytes, double worker_bw_bps,
                        double server_bw_bps, double latency_s) {
  if (workers == 0) throw std::invalid_argument("des_ps_sync_time: 0 workers");
  // Node 0 is the server; nodes 1..N are workers.
  std::vector<double> bw(workers + 1, worker_bw_bps);
  bw[0] = server_bw_bps;
  NetworkSimulator net(bw, latency_s);
  for (size_t w = 1; w <= workers; ++w) net.submit(w, 0, bytes, 0.0);
  const double push_done = net.run();
  NetworkSimulator pull(bw, latency_s);
  for (size_t w = 1; w <= workers; ++w) pull.submit(0, w, bytes, 0.0);
  return push_done + pull.run();
}

double des_ring_allreduce_time(size_t workers, double bytes, double bw_bps,
                               double latency_s) {
  if (workers <= 1) return 0.0;
  const double chunk = bytes / static_cast<double>(workers);
  double total = 0.0;
  std::vector<double> bw(workers, bw_bps);
  for (size_t round = 0; round < 2 * (workers - 1); ++round) {
    NetworkSimulator net(bw, latency_s);
    for (size_t n = 0; n < workers; ++n)
      net.submit(n, (n + 1) % workers, chunk, 0.0);
    total += net.run();
  }
  return total;
}

}  // namespace selsync
