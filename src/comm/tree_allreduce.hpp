// log(N)-deep reduction tree over point-to-point channels.
//
// Ranks form a binary heap tree (parent(r) = (r-1)/2). An allreduce is one
// gather sweep up the tree followed by one broadcast sweep down it —
// 2*ceil(log2(N)) message hops on the critical path, the schedule
// CostModel::tree_allreduce_time prices.
//
// Determinism contract: interior nodes do NOT fold partial sums in tree
// order. They forward the rank-tagged contributions of their subtree, and
// the root reduces all N contributions in ascending rank order — the exact
// float summation order SharedCollectives::allreduce_sum fixes (and the
// determinism real systems get from NCCL's fixed reduction trees). This is
// what makes the tree backend bit-identical to the shared-memory backend,
// which the golden parity tests assert; the price is gather-style payload
// growth toward the root, which only the simulated cost model would notice
// and which it deliberately prices as the classic 2*log2(N)*(alpha + beta*n)
// tree schedule.
//
// With a FaultInjector attached, every hop runs over the same lossy-link
// protocol as RingAllreduce: messages are sequence numbered, drops cost the
// sender a simulated retransmit timeout, delays accrue to the receiver's
// pending-delay account, duplicates are filtered by the sequence check. The
// payload that lands is always correct — faults only change timing and the
// event log.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "comm/channel.hpp"

namespace selsync {

class ChunkCodec;
class FaultInjector;

class TreeAllreduce {
 public:
  explicit TreeAllreduce(size_t workers, FaultInjector* faults = nullptr);

  /// In-place sum-allreduce of `data` (same length on every rank). All
  /// `workers` ranks must call per round.
  ///
  /// With a `codec`, contributions move encoded: each rank encodes its own
  /// contribution exactly once before it enters the up sweep (error feedback
  /// keyed per rank), interior nodes forward their subtree's already-encoded
  /// contributions verbatim, and the root encodes the reduced vector once —
  /// applying the same decode to its own replica — before the down sweep, so
  /// every rank adopts identical reconstructed values. Wire accounting
  /// accrues per link crossing into the codec's per-rank round account,
  /// which naturally prices the gather-style payload growth toward the root.
  void run(size_t rank, std::span<float> data, ChunkCodec* codec = nullptr);

  /// Closes every link so blocked receivers throw instead of hanging; used
  /// by the cluster runner's abort path.
  void close_all();

  /// Message hops on the critical path (up + down) for an N-rank tree.
  static size_t critical_path_hops(size_t workers);

 private:
  /// One rank's gradient as it travels the up sweep. `wire_bytes` is its
  /// encoded size (0 when moving dense); forwarders price it without
  /// re-encoding.
  struct Contribution {
    size_t rank = 0;
    size_t wire_bytes = 0;
    std::vector<float> values;
  };

  struct Envelope {
    uint64_t seq = 0;
    double delay_s = 0.0;
    /// Up-sweep payload: the sender's subtree contributions. Empty on
    /// down-sweep messages.
    std::vector<Contribution> contribs;
    /// Down-sweep payload: the reduced vector (its encoded size rides in
    /// `reduced_wire_bytes`). Empty on up-sweep messages.
    std::vector<float> reduced;
    size_t reduced_wire_bytes = 0;
  };

  static size_t parent_of(size_t rank) { return (rank - 1) / 2; }
  std::vector<size_t> children_of(size_t rank) const;

  void send_reliable(size_t sender, Channel<Envelope>& link, uint64_t& seq,
                     Envelope env);
  Envelope recv_reliable(size_t receiver, Channel<Envelope>& link,
                         uint64_t& last_seq);

  size_t workers_;
  FaultInjector* faults_;
  // One up link and one down link per non-root rank, indexed by that rank.
  // up_links_[r] carries r -> parent(r); down_links_[r] carries
  // parent(r) -> r. Each sequence counter is touched only by the one thread
  // that owns that end of the link.
  std::vector<std::unique_ptr<Channel<Envelope>>> up_links_;
  std::vector<std::unique_ptr<Channel<Envelope>>> down_links_;
  std::vector<uint64_t> up_send_seq_, up_recv_seq_;
  std::vector<uint64_t> down_send_seq_, down_recv_seq_;
};

}  // namespace selsync
