// The one synchronous round protocol of the parameter-server tier.
//
// The pre-redesign ParameterServer exposed two parallel entry points —
// push_and_average (arrival-order fold) and push_and_sum_ranked
// (rank-slotted deterministic fold) — each with its own duplicated round
// state. PsRound collapses them into a single begin/contribute/await
// protocol; the old entry points survive only as the PsRoundOrder mode
// flag:
//
//   PsRoundConfig cfg;                     // kRanked: bit-reproducible
//   cfg.participants = group_size;
//   const uint64_t ticket = round.begin(cfg);
//   round.contribute(ticket, rank, data);  // non-blocking
//   std::vector<float> fold = round.await(ticket);
//
// begin() opens (or joins) the current round and never blocks, so a worker
// can contribute to every shard of a ShardedParameterServer before waiting
// on any of them — that is what lets K shards overlap their ingest.
// contribute() lands the payload; the last arriving contribution folds the
// round. await() blocks until the fold (or an abort) and returns it.
//
// Fold semantics, fixed so rounds are comparable across modes:
//  * kRanked: contributions land in per-rank slots and the fold reduces
//    them in ascending rank order — the same fixed float summation order
//    SharedCollectives uses — so the result is bit-reproducible regardless
//    of arrival order.
//  * kArrival: contributions accumulate in lock order as they arrive. Not
//    bit-reproducible by design (documented legacy mode: the paper's
//    pushToPS accumulates whichever RPC lands first).
//  * average divides the fold by `participants` before publishing it.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "comm/wait_slot.hpp"

namespace selsync {

/// The float summation order of a round's fold (see file comment). Not
/// serialized anywhere — run records identify rounds by backend, never by
/// fold order — so there is no EnumEntry name table for it.
enum class PsRoundOrder { kRanked, kArrival };

struct PsRoundConfig {
  /// How many contributions close the round; must be in (0, workers].
  size_t participants = 0;
  PsRoundOrder order = PsRoundOrder::kRanked;
  /// Publish the mean instead of the sum.
  bool average = false;
  /// Floats this round carries; 0 (the default) means the server's full
  /// dim(). The sliced data plane runs sub-range rounds — a slice's
  /// intersection with the shard — without re-sharding the store; must be
  /// in [0, dim()]. Part of the round config every joiner must match.
  size_t values = 0;
};

/// One aggregation-round state machine (one lock, one condition variable).
/// A ShardedParameterServer composes K of these, one per parameter range.
class PsRound {
 public:
  /// Rounds carry `dim` floats; at most `workers` distinct ranks exist.
  PsRound(size_t dim, size_t workers);

  size_t dim() const { return dim_; }
  size_t workers() const { return workers_; }

  /// Opens the current round with `config`, or joins it (every participant
  /// calls begin once per round; the config must match the opener's).
  /// Non-blocking. Returns the ticket contribute()/await() take.
  uint64_t begin(const PsRoundConfig& config);

  /// Lands one contribution on the current round. `rank` selects the slot
  /// in kRanked order (each participant a distinct rank < workers());
  /// ignored in kArrival order. The last arriving contribution folds the
  /// round. Non-blocking.
  void contribute(uint64_t ticket, size_t rank, std::span<const float> data);

  /// Blocks until the ticket's round has folded, then returns the fold.
  /// Throws BarrierAborted if the server is torn down first.
  std::vector<float> await(uint64_t ticket);

  /// Tears the round down: every blocked await() (current and future)
  /// throws BarrierAborted, so a crashed worker cannot strand its peers.
  void abort();
  bool aborted() const;

 private:
  const size_t dim_;
  const size_t workers_;

  // PsRound IS the synchronization primitive of the PS tier; the
  // lock/wait-slot pair lives nowhere else.
  mutable std::mutex mutex_;
  WaitSlot cv_;

  PsRoundConfig config_;
  /// kRanked: workers() slots of dim() floats. kArrival: dim() accumulators.
  std::vector<float> buffer_;
  size_t begun_ = 0;
  size_t arrived_ = 0;
  uint64_t round_ = 0;
  std::vector<float> result_;
  bool aborted_ = false;
};

}  // namespace selsync
