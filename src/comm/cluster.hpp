// Simulated cluster runner: one OS thread per worker (kThreads) or one
// cooperatively-scheduled fiber per worker on a single host thread (kDes),
// shared collectives, exception-safe teardown. The worker body is the
// analogue of the per-rank main() of an MPI program and is identical under
// both engines — that is what the parity test tier proves bit-for-bit.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "comm/collectives.hpp"
#include "util/enum_names.hpp"

namespace selsync {

struct WorkerContext {
  size_t rank = 0;
  size_t size = 1;
  SharedCollectives* collectives = nullptr;

  bool is_root() const { return rank == 0; }
};

/// Which execution engine drives the worker bodies. kThreads is the
/// original preemptive cluster (one OS thread per rank — the only engine
/// sanitizers understand); kDes runs every rank as a fiber under the
/// virtual-time EventLoop (comm/event_loop.hpp), deterministic and cheap
/// enough to sweep N=1024.
enum class EngineKind { kThreads, kDes };

/// Canonical --engine spellings; selsync_lint (enum-table) keeps this table
/// in lockstep with the enumerator list above.
inline constexpr EnumEntry<EngineKind> kEngineKindNames[] = {
    {EngineKind::kThreads, "threads"},
    {EngineKind::kDes, "des"},
};

const char* engine_kind_name(EngineKind kind);

/// "threads" | "des" -> kind; nullopt for anything else.
std::optional<EngineKind> engine_kind_from_name(std::string_view name);

/// The accepted --engine spellings, for CLI help and error messages.
std::string engine_kind_names();

/// Runs `workers` copies of `body(ctx)` under `engine` and waits for all of
/// them. If any worker throws, the cluster barrier is aborted (unblocking
/// peers parked in barriers, allreduces and the flag allgather) and
/// `on_abort` — when provided — is invoked once so the caller can release
/// any other blocking primitives its workers use (parameter-server waits,
/// ring channels). The first exception is rethrown on the caller's thread.
void run_cluster(EngineKind engine, size_t workers,
                 const std::function<void(WorkerContext&)>& body,
                 const std::function<void()>& on_abort = {});

/// Thread-engine shorthand (the historical entry point).
void run_cluster(size_t workers,
                 const std::function<void(WorkerContext&)>& body,
                 const std::function<void()>& on_abort = {});

}  // namespace selsync
