// Simulated cluster runner: one OS thread per worker, shared collectives,
// exception-safe teardown. The worker body is the analogue of the per-rank
// main() of an MPI program.
#pragma once

#include <functional>

#include "comm/collectives.hpp"

namespace selsync {

struct WorkerContext {
  size_t rank = 0;
  size_t size = 1;
  SharedCollectives* collectives = nullptr;

  bool is_root() const { return rank == 0; }
};

/// Spawns `workers` threads running `body(ctx)` and joins them. If any
/// worker throws, the cluster barrier is aborted (unblocking peers parked
/// in barriers, allreduces and the flag allgather) and `on_abort` — when
/// provided — is invoked once so the caller can release any other blocking
/// primitives its workers use (parameter-server waits, ring channels).
/// The first exception is rethrown on the caller's thread.
void run_cluster(size_t workers,
                 const std::function<void(WorkerContext&)>& body,
                 const std::function<void()>& on_abort = {});

}  // namespace selsync
