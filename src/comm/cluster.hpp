// Simulated cluster runner: one OS thread per worker, shared collectives,
// exception-safe teardown. The worker body is the analogue of the per-rank
// main() of an MPI program.
#pragma once

#include <functional>

#include "comm/collectives.hpp"

namespace selsync {

struct WorkerContext {
  size_t rank = 0;
  size_t size = 1;
  SharedCollectives* collectives = nullptr;

  bool is_root() const { return rank == 0; }
};

/// Spawns `workers` threads running `body(ctx)` and joins them. If any
/// worker throws, the cluster barrier is aborted (unblocking the others)
/// and the first exception is rethrown on the caller's thread.
void run_cluster(size_t workers,
                 const std::function<void(WorkerContext&)>& body);

}  // namespace selsync
