// Cyclic barrier with abort support.
//
// std::barrier cannot be torn down while a worker is waiting, which turns
// any worker exception into a cluster deadlock. This barrier lets the
// cluster runner abort(): every current and future wait() throws
// BarrierAborted, unwinding all workers cleanly.
#pragma once

#include <cstddef>
#include <mutex>
#include <stdexcept>

#include "comm/wait_slot.hpp"

namespace selsync {

struct BarrierAborted : std::runtime_error {
  BarrierAborted() : std::runtime_error("cluster barrier aborted") {}
};

class AbortableBarrier {
 public:
  explicit AbortableBarrier(size_t parties) : parties_(parties) {
    if (parties == 0) throw std::invalid_argument("barrier: zero parties");
  }

  /// Blocks until all parties arrive (or abort() is called).
  void wait() { wait_group(parties_); }

  /// Group wait: blocks until `parties` arrivals complete this generation.
  /// Used by degraded clusters where only the surviving workers take part;
  /// every caller of one generation must pass the same count (the callers
  /// derive it from the same deterministic fault schedule).
  void wait_group(size_t parties) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (aborted_) throw BarrierAborted();
    if (parties == 0 || parties > parties_)
      throw std::invalid_argument("barrier: bad group size");
    const size_t my_generation = generation_;
    if (++arrived_ == parties) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return generation_ != my_generation || aborted_; });
    if (aborted_ && generation_ == my_generation) throw BarrierAborted();
  }

  /// Wakes all waiters with BarrierAborted; subsequent waits throw too.
  void abort() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      aborted_ = true;
    }
    cv_.notify_all();
  }

  bool aborted() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return aborted_;
  }

  size_t parties() const { return parties_; }

 private:
  const size_t parties_;
  mutable std::mutex mutex_;
  WaitSlot cv_;
  size_t arrived_ = 0;
  size_t generation_ = 0;
  bool aborted_ = false;
};

}  // namespace selsync
