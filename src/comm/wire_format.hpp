// WireFormat — the one serialize/deserialize surface for chunk payloads
// (DESIGN.md §13).
//
// Before this API existed the byte layout of an encoded chunk lived only as
// arithmetic inside GradientCompressor::wire_bytes: the in-proc transports
// *account* wire bytes without ever materializing them. The socket transport
// has to put real bytes on a real wire, so the layout moves here and both
// carriers consume it — the in-proc chunk protocol through
// chunk_wire_bytes() (GradientCompressor::wire_bytes delegates to it, value
// for value, which is what keeps the golden records byte-identical), the
// socket transport through encode_chunk()/decode_chunk(). One codec, two
// carriers, no duplicated layout.
//
// Framing: every message is a 16-byte header followed by `payload_len`
// payload bytes. The header is versioned and endian-pinned (every
// multi-byte field is little-endian on the wire regardless of host order):
//
//   offset  size  field
//   0       4     magic  0x53594E43 ("CNYS" on a little-endian wire)
//   4       2     version (kWireVersion; decode rejects any other)
//   6       2     verb (transport-defined; opaque to this layer)
//   8       8     payload_len
//
// Chunk payload layouts (dense_count = entries of the dense vector the
// payload stands in for; supplied by context, never shipped):
//   none    dense_count little-endian f32
//   topk    pairs of (u32 index, f32 value), one per surviving entry — the
//           *accounted* size budgets clamp(k,1,n) pairs, the faithful
//           payload ships however many entries the threshold kept (ties can
//           exceed k; zeros inside the kept set are elided and decode to
//           the same 0.0f)
//   signsgd one f32 scale then ceil(n/8) sign-bitmap bytes, bit i set when
//           entry i is +scale. The codec's transform maps an exactly-zero
//           input entry to 0.0f, which one bit cannot carry: encode
//           canonicalizes it to the positive sign (decode returns +scale).
//           Exact for every payload with no exactly-zero entries —
//           wire_format_test pins both properties.
//   quant8  two f32 (scale, max_abs) then n signed level bytes; decode
//           reconstructs level * scale, bit-exact against codec_transform's
//           round(x/scale) * scale
//
// Decode fails loudly: a short buffer, a torn frame, a garbage magic or an
// unknown version throws WireFormatError — payloads never silently
// truncate.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/compression.hpp"

namespace selsync::wire {

inline constexpr uint32_t kMagic = 0x53594E43;  // "CNYS" little-endian
inline constexpr uint16_t kWireVersion = 1;
inline constexpr size_t kHeaderBytes = 16;

class WireFormatError : public std::runtime_error {
 public:
  explicit WireFormatError(const std::string& what)
      : std::runtime_error("wire format: " + what) {}
};

/// ---- endian-pinned primitive stores/loads --------------------------------
void put_u16(std::vector<uint8_t>& out, uint16_t v);
void put_u32(std::vector<uint8_t>& out, uint32_t v);
void put_u64(std::vector<uint8_t>& out, uint64_t v);
void put_f32(std::vector<uint8_t>& out, float v);
void put_f64(std::vector<uint8_t>& out, double v);

/// Bounds-checked little-endian reader over a received payload; every
/// overrun throws WireFormatError instead of reading past the buffer.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit Reader(const std::vector<uint8_t>& buf)
      : Reader(buf.data(), buf.size()) {}

  uint16_t u16();
  uint32_t u32();
  uint64_t u64();
  float f32();
  double f64();
  /// Raw bytes (for bitmap/level payloads).
  const uint8_t* bytes(size_t n);
  size_t remaining() const { return size_ - at_; }
  /// Decoders call this last: trailing garbage is a framing bug, not slack.
  void expect_end() const;

 private:
  const uint8_t* data_;
  size_t size_;
  size_t at_ = 0;
};

/// ---- framing -------------------------------------------------------------
struct FrameHeader {
  uint16_t verb = 0;
  uint64_t payload_len = 0;
};

/// The 16-byte header for a `verb` frame carrying `payload_len` bytes.
std::vector<uint8_t> encode_header(uint16_t verb, uint64_t payload_len);

/// Parses exactly kHeaderBytes; throws WireFormatError on a short buffer,
/// bad magic, or a version this build does not speak.
FrameHeader decode_header(const uint8_t* data, size_t size);

/// ---- float-vector payloads (the transport's dense carrier) ---------------
void put_f32s(std::vector<uint8_t>& out, const std::vector<float>& v);
std::vector<float> get_f32s(Reader& in, size_t count);

/// ---- chunk payloads ------------------------------------------------------
/// The accounted wire size of a `values`-entry chunk under `config` (0 for
/// an empty chunk whatever the codec). This is the layout-truth function:
/// GradientCompressor::wire_bytes delegates here, so the in-proc transports'
/// cost accounting and the socket transport's framing can never drift.
size_t chunk_wire_bytes(const CompressionConfig& config, size_t values);

/// Serializes a chunk that already went through codec_transform (or any
/// dense payload under kNone) into the layout documented above.
std::vector<uint8_t> encode_chunk(const CompressionConfig& config,
                                  const std::vector<float>& values);

/// Reconstructs the `dense_count`-entry chunk from its wire payload.
/// Throws WireFormatError on torn/oversized payloads or out-of-range
/// indices.
std::vector<float> decode_chunk(const CompressionConfig& config,
                                const uint8_t* data, size_t size,
                                size_t dense_count);

}  // namespace selsync::wire
