#include "comm/tree_allreduce.hpp"

#include <cmath>
#include <stdexcept>

#include "comm/compressed_chunk.hpp"
#include "comm/fault_injector.hpp"

namespace selsync {

TreeAllreduce::TreeAllreduce(size_t workers, FaultInjector* faults)
    : workers_(workers),
      faults_(faults),
      up_send_seq_(workers, 0),
      up_recv_seq_(workers, 0),
      down_send_seq_(workers, 0),
      down_recv_seq_(workers, 0) {
  if (workers == 0) throw std::invalid_argument("TreeAllreduce: zero workers");
  up_links_.reserve(workers);
  down_links_.reserve(workers);
  for (size_t r = 0; r < workers; ++r) {
    up_links_.push_back(std::make_unique<Channel<Envelope>>());
    down_links_.push_back(std::make_unique<Channel<Envelope>>());
  }
}

size_t TreeAllreduce::critical_path_hops(size_t workers) {
  if (workers <= 1) return 0;
  return 2 * static_cast<size_t>(
                 std::ceil(std::log2(static_cast<double>(workers))));
}

std::vector<size_t> TreeAllreduce::children_of(size_t rank) const {
  std::vector<size_t> kids;
  for (size_t c : {2 * rank + 1, 2 * rank + 2})
    if (c < workers_) kids.push_back(c);
  return kids;
}

void TreeAllreduce::close_all() {
  for (auto& link : up_links_) link->close();
  for (auto& link : down_links_) link->close();
}

void TreeAllreduce::send_reliable(size_t sender, Channel<Envelope>& link,
                                  uint64_t& seq, Envelope env) {
  env.seq = ++seq;
  if (faults_) {
    const uint64_t it = faults_->current_iteration(sender);
    switch (faults_->draw_message_fate(sender)) {
      case MessageFate::kDrop:
        // First copy lost; the sender retransmits after the simulated ack
        // timeout, so only the late copy is enqueued.
        faults_->record(sender, FaultKind::kMessageDrop, it,
                        faults_->plan().messages.retransmit_timeout_s);
        faults_->add_pending_delay(
            sender, faults_->plan().messages.retransmit_timeout_s);
        break;
      case MessageFate::kDelay:
        env.delay_s = faults_->plan().messages.delay_s;
        faults_->record(sender, FaultKind::kMessageDelay, it, env.delay_s);
        break;
      case MessageFate::kDuplicate: {
        faults_->record(sender, FaultKind::kMessageDuplicate, it, 0.0);
        Envelope dup = env;  // extra copy rides ahead of the original
        link.send(std::move(dup));
        break;
      }
      case MessageFate::kDeliver:
        break;
    }
  }
  link.send(std::move(env));
}

TreeAllreduce::Envelope TreeAllreduce::recv_reliable(size_t receiver,
                                                     Channel<Envelope>& link,
                                                     uint64_t& last_seq) {
  while (true) {
    auto msg = link.recv();
    if (!msg) throw std::runtime_error("tree allreduce: channel closed");
    if (msg->seq <= last_seq) continue;  // duplicate: drop silently
    last_seq = msg->seq;
    if (faults_ && msg->delay_s > 0.0)
      faults_->add_pending_delay(receiver, msg->delay_s);
    return std::move(*msg);
  }
}

void TreeAllreduce::run(size_t rank, std::span<float> data,
                        ChunkCodec* codec) {
  if (workers_ == 1) return;
  const size_t n = data.size();
  const size_t dense_bytes = n * sizeof(float);
  // Codec slots per rank: 0 = this rank's own contribution, 1 = the reduced
  // vector (only the root encodes it). Each keeps its own error-feedback
  // residual across rounds.
  constexpr size_t kOwnSlot = 0, kReducedSlot = 1;

  // ---- up sweep: gather rank-tagged contributions toward the root --------
  // With a codec, a contribution is encoded exactly once — by its owner,
  // before it first flies — and forwarded verbatim by interior nodes.
  std::vector<Contribution> contribs;
  {
    Contribution own;
    own.rank = rank;
    own.values.assign(data.begin(), data.end());
    if (codec)
      own.wire_bytes =
          codec->transform(rank, kOwnSlot, std::span<float>(own.values));
    contribs.push_back(std::move(own));
  }
  for (size_t child : children_of(rank)) {
    Envelope env =
        recv_reliable(rank, *up_links_[child], up_recv_seq_[child]);
    for (auto& entry : env.contribs) {
      if (entry.values.size() != n)
        throw std::invalid_argument("tree allreduce: length mismatch");
      contribs.push_back(std::move(entry));
    }
  }

  size_t reduced_wire = 0;
  if (rank != 0) {
    if (codec)
      for (const Contribution& c : contribs)
        codec->charge(rank, c.wire_bytes, dense_bytes);
    Envelope up;
    up.contribs = std::move(contribs);
    send_reliable(rank, *up_links_[rank], up_send_seq_[rank], std::move(up));
    const Envelope down =
        recv_reliable(rank, *down_links_[rank], down_recv_seq_[rank]);
    std::copy(down.reduced.begin(), down.reduced.end(), data.begin());
    reduced_wire = down.reduced_wire_bytes;
  } else {
    // Root: reduce all N contributions in ascending rank order — the same
    // fixed summation order as SharedCollectives::allreduce_sum, so the
    // result is bit-identical to the shared-memory backend.
    std::vector<const std::vector<float>*> by_rank(workers_, nullptr);
    for (const auto& entry : contribs) by_rank[entry.rank] = &entry.values;
    for (const auto* c : by_rank)
      if (!c) throw std::logic_error("tree allreduce: missing contribution");
    for (size_t i = 0; i < n; ++i) {
      float acc = 0.f;
      for (size_t w = 0; w < workers_; ++w) acc += (*by_rank[w])[i];
      data[i] = acc;
    }
    // The root encodes the reduced vector once and adopts the decode
    // itself, so the broadcast hands every rank the identical
    // reconstruction it holds.
    if (codec) reduced_wire = codec->transform(rank, kReducedSlot, data);
  }

  // ---- down sweep: broadcast the reduced vector ---------------------------
  for (size_t child : children_of(rank)) {
    Envelope down;
    down.reduced.assign(data.begin(), data.end());
    down.reduced_wire_bytes = reduced_wire;
    if (codec) codec->charge(rank, reduced_wire, dense_bytes);
    send_reliable(rank, *down_links_[child], down_send_seq_[child],
                  std::move(down));
  }
}

}  // namespace selsync
