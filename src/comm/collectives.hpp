// Shared-memory collectives for the simulated cluster.
//
// SharedCollectives gives N worker threads MPI-style bulk-synchronous ops
// (allreduce, allgather, broadcast, max-reduction for clock alignment). All
// N workers must call each collective in the same order — the same contract
// MPI imposes on communicators. The data moves through shared buffers; the
// *time* the equivalent network transfer would take is charged separately
// via comm/cost_model.
//
// RingAllreduce is a faithful message-passing implementation of the
// bandwidth-optimal ring algorithm (reduce-scatter + allgather) over
// per-link channels; it exists to validate the algorithm the cost model
// prices and to serve the microbenchmarks.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "comm/barrier.hpp"
#include "comm/channel.hpp"

namespace selsync {

class SharedCollectives {
 public:
  explicit SharedCollectives(size_t workers);

  size_t workers() const { return workers_; }

  void barrier() { barrier_.wait(); }
  void abort() { barrier_.abort(); }
  bool aborted() const { return barrier_.aborted(); }

  /// In-place sum-allreduce over all workers' `data` (equal lengths).
  void allreduce_sum(size_t rank, std::span<float> data);

  /// In-place mean-allreduce (sum / N): the paper's parameter averaging.
  void allreduce_mean(size_t rank, std::span<float> data);

  /// Max-reduction of one double; used to align simulated worker clocks at
  /// synchronization points.
  double allreduce_max(size_t rank, double value);

  /// Each worker contributes one byte; returns all N bytes in rank order.
  /// This is Alg. 1's allgather_status over the sync-flag bits.
  std::vector<uint8_t> allgather_byte(size_t rank, uint8_t value);

  /// Root's data overwrites everyone's.
  void broadcast(size_t rank, size_t root, std::span<float> data);

 private:
  size_t workers_;
  AbortableBarrier barrier_;
  std::vector<float> float_buf_;  // N slots of equal length (allreduce) or
                                  // one payload (broadcast)
  std::vector<double> double_buf_;
  std::vector<uint8_t> byte_buf_;
};

/// Bandwidth-optimal ring allreduce over point-to-point channels.
/// Each of the N participants calls run(rank, data); chunks circulate
/// 2*(N-1) steps (reduce-scatter, then allgather).
class RingAllreduce {
 public:
  explicit RingAllreduce(size_t workers);

  /// In-place sum-allreduce of `data` (same length on every rank).
  void run(size_t rank, std::span<float> data);

  /// Messages sent per participant for a vector of `n` elements (the cost
  /// model's volume assumption: 2*(N-1) chunk transfers of n/N elements).
  static size_t messages_per_rank(size_t workers) {
    return workers <= 1 ? 0 : 2 * (workers - 1);
  }

 private:
  size_t workers_;
  // links_[r] carries messages from rank r to rank (r+1) % N.
  std::vector<std::unique_ptr<Channel<std::vector<float>>>> links_;
};

}  // namespace selsync
