// Shared-memory collectives for the simulated cluster.
//
// SharedCollectives gives N worker threads MPI-style bulk-synchronous ops
// (allreduce, allgather, broadcast, max-reduction for clock alignment). All
// N workers must call each collective in the same order — the same contract
// MPI imposes on communicators. The data moves through shared buffers; the
// *time* the equivalent network transfer would take is charged separately
// via comm/cost_model.
//
// Every op also has a group form taking a CommGroup: the degraded-cluster
// mode used under fault injection, where only the surviving workers of an
// iteration participate. All members of a group must agree on the member
// mask (they derive it from the same deterministic fault schedule); absent
// ranks contribute zero to reductions and a zero byte to the flag
// allgather, so BSP/SelSync rounds proceed with the surviving quorum.
//
// RingAllreduce is a faithful message-passing implementation of the
// bandwidth-optimal ring algorithm (reduce-scatter + allgather) over
// per-link channels; it exists to validate the algorithm the cost model
// prices and to serve the microbenchmarks. With a FaultInjector attached,
// every chunk transfer runs over a lossy link: messages are sequence
// numbered, drops are retransmitted after a simulated ack timeout, delays
// accrue to the receiver's simulated clock, and duplicates are discarded by
// the sequence check.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "comm/barrier.hpp"
#include "comm/channel.hpp"

namespace selsync {

class ChunkCodec;
class FaultInjector;

/// The set of workers taking part in one collective call. `mask` has one
/// entry per cluster rank (1 = member); `size` is the member count and
/// `leader` the lowest member rank (it owns shared-buffer setup duties that
/// rank 0 owns in the full-cluster case).
struct CommGroup {
  std::vector<uint8_t> mask;
  size_t size = 0;
  size_t leader = 0;

  static CommGroup full(size_t workers) {
    CommGroup g;
    g.mask.assign(workers, 1);
    g.size = workers;
    g.leader = 0;
    return g;
  }

  static CommGroup from_mask(std::vector<uint8_t> member_mask) {
    CommGroup g;
    g.mask = std::move(member_mask);
    g.size = 0;
    g.leader = g.mask.size();
    for (size_t r = 0; r < g.mask.size(); ++r)
      if (g.mask[r]) {
        if (g.size == 0) g.leader = r;
        ++g.size;
      }
    return g;
  }
};

class SharedCollectives {
 public:
  explicit SharedCollectives(size_t workers);

  size_t workers() const { return workers_; }

  void barrier() { barrier_.wait(); }
  void barrier(const CommGroup& group) { barrier_.wait_group(group.size); }
  void abort() { barrier_.abort(); }
  bool aborted() const { return barrier_.aborted(); }

  /// In-place sum-allreduce over all workers' `data` (equal lengths).
  void allreduce_sum(size_t rank, std::span<float> data);
  void allreduce_sum(size_t rank, std::span<float> data,
                     const CommGroup& group);

  /// In-place mean-allreduce (sum / group size): the paper's parameter
  /// averaging.
  void allreduce_mean(size_t rank, std::span<float> data);
  void allreduce_mean(size_t rank, std::span<float> data,
                      const CommGroup& group);

  /// Max-reduction of one double; used to align simulated worker clocks at
  /// synchronization points.
  double allreduce_max(size_t rank, double value);
  double allreduce_max(size_t rank, double value, const CommGroup& group);

  /// Each worker contributes one byte; returns all N bytes in rank order.
  /// This is Alg. 1's allgather_status over the sync-flag bits. In the
  /// group form, absent ranks read as 0 (no vote).
  std::vector<uint8_t> allgather_byte(size_t rank, uint8_t value);
  std::vector<uint8_t> allgather_byte(size_t rank, uint8_t value,
                                      const CommGroup& group);

  /// Root's data overwrites everyone's.
  void broadcast(size_t rank, size_t root, std::span<float> data);
  void broadcast(size_t rank, size_t root, std::span<float> data,
                 const CommGroup& group);

 private:
  size_t workers_;
  AbortableBarrier barrier_;
  CommGroup full_;
  std::vector<float> float_buf_;  // N slots of equal length (allreduce) or
                                  // one payload (broadcast)
  std::vector<double> double_buf_;
  std::vector<uint8_t> byte_buf_;
};

/// Bandwidth-optimal ring allreduce over point-to-point channels.
/// Each of the N participants calls run(rank, data); chunks circulate
/// 2*(N-1) steps (reduce-scatter, then allgather).
class RingAllreduce {
 public:
  /// With `faults`, link traffic passes through the injector's message-fate
  /// draws: drops cost the sender a retransmit timeout (accrued via
  /// FaultInjector::add_pending_delay) before the copy that does arrive,
  /// delays accrue to the receiver, duplicates are filtered by sequence
  /// number. The payload that lands is always correct — faults only change
  /// timing and the event log.
  explicit RingAllreduce(size_t workers, FaultInjector* faults = nullptr);

  /// In-place sum-allreduce of `data` (same length on every rank). With a
  /// `codec`, chunks move encoded: each reduce-scatter hop re-encodes the
  /// partial sum it forwards (the sender holds decoded floats, so every hop
  /// costs one lossy encode, with error feedback keyed per chunk); the fully
  /// reduced chunk is encoded once by its owner and then forwarded verbatim
  /// through the allgather, so all ranks decode the same bytes and replicas
  /// stay consistent. Wire accounting accrues per send into the codec's
  /// per-rank round account.
  void run(size_t rank, std::span<float> data, ChunkCodec* codec = nullptr);

  /// Closes every link. Blocked receivers see a closed channel and throw;
  /// used by the cluster runner's teardown path so a crashed peer cannot
  /// strand the others in recv().
  void close_all();

  /// Messages sent per participant for a vector of `n` elements (the cost
  /// model's volume assumption: 2*(N-1) chunk transfers of n/N elements).
  static size_t messages_per_rank(size_t workers) {
    return workers <= 1 ? 0 : 2 * (workers - 1);
  }

 private:
  struct Envelope {
    uint64_t seq = 0;
    double delay_s = 0.0;
    /// Encoded size of `data` on the wire; 0 when the chunk moves dense.
    /// Receivers that forward the chunk verbatim charge this size.
    size_t wire_bytes = 0;
    std::vector<float> data;
  };

  void send_reliable(size_t rank, size_t link, std::vector<float> payload,
                     size_t wire_bytes = 0);
  Envelope recv_reliable(size_t rank, size_t link);

  size_t workers_;
  FaultInjector* faults_;
  // links_[r] carries messages from rank r to rank (r+1) % N.
  std::vector<std::unique_ptr<Channel<Envelope>>> links_;
  std::vector<uint64_t> send_seq_;  // per sending rank; owner-thread only
  std::vector<uint64_t> recv_seq_;  // per link, highest seq seen by receiver
};

}  // namespace selsync
