// Gradient compression baselines (paper §II-D): Top-k sparsification
// (DGC/Top-k), sign quantization (signSGD) and 8-bit linear quantization
// (Terngrad-family). SelSync is positioned against these: they shrink each
// synchronization, SelSync skips synchronizations outright.
//
// All codecs run compress->decompress in place (the simulated cluster moves
// data through shared memory; only the *wire* payload differs) and support
// DGC-style error feedback: the residual each codec drops is fed back into
// the next iteration's gradient so the update is unbiased over time.
//
// codec_transform() is the single encode->decode kernel; the full-vector
// GradientCompressor (shared-memory / PS data planes) and the per-chunk
// ChunkCodec (ring / tree data planes, comm/compressed_chunk.hpp) both run
// their payloads through it, so every transport applies identical codec
// semantics.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/enum_names.hpp"

namespace selsync {

enum class CompressionKind { kNone, kTopK, kSignSgd, kQuant8 };

/// Canonical --codec spellings; selsync_lint (enum-table) keeps this table
/// in lockstep with the enumerator list above.
inline constexpr EnumEntry<CompressionKind> kCompressionKindNames[] = {
    {CompressionKind::kNone, "none"},
    {CompressionKind::kTopK, "topk"},
    {CompressionKind::kSignSgd, "signsgd"},
    {CompressionKind::kQuant8, "quant8"},
};

const char* compression_kind_name(CompressionKind kind);

/// "none" | "topk" | "signsgd" | "quant8" -> kind; nullopt for anything else.
std::optional<CompressionKind> compression_kind_from_name(
    std::string_view name);

/// The accepted --codec spellings, for CLI help and error messages.
std::string compression_kind_names();

struct CompressionConfig {
  CompressionKind kind = CompressionKind::kNone;
  /// Fraction of entries kept by Top-k (DGC uses 0.1%-1%).
  double topk_fraction = 0.01;
  /// Enable error-feedback residual accumulation.
  bool error_feedback = true;

  /// Accordion/GraVAC-style adaptation (paper references [27]/[29]): in
  /// critical regimes — when the caller's Δ(g_i) is at or above
  /// `critical_delta` — Top-k switches to the conservative
  /// `topk_fraction_critical` so important updates ship nearly intact,
  /// reverting to the aggressive `topk_fraction` once gradients stabilize.
  bool adaptive = false;
  double critical_delta = 0.1;
  double topk_fraction_critical = 0.25;
};

/// Resolves the adaptive Top-k fraction against the caller's current Δ(g):
/// the returned config's topk_fraction is final.
CompressionConfig effective_compression(const CompressionConfig& config,
                                        double delta);

/// Applies `effective`'s encode->decode to `data` in place. With `residual`
/// non-null (and error feedback enabled in the config) the residual is added
/// before encoding and refilled with what the codec dropped — DGC error
/// feedback. Adaptive resolution happens in the caller (the fraction in
/// `effective` is final; see effective_compression). Returns the encoded
/// wire payload in bytes.
size_t codec_transform(const CompressionConfig& effective,
                       std::span<float> data, std::vector<float>* residual);

class GradientCompressor {
 public:
  explicit GradientCompressor(CompressionConfig config);

  /// Applies compress->decompress to `grad` in place (adding and updating
  /// the error-feedback residual) and returns the wire payload in bytes for
  /// a gradient of this length. `delta` is the caller's current relative
  /// gradient change, consumed only by the adaptive mode.
  size_t compress(std::vector<float>& grad, double delta = 0.0);

  /// Wire bytes / uncompressed bytes for the last compress() call. Drives
  /// the paper-scale communication cost. Well-defined before the first
  /// compress(): 1.0 (nothing shipped yet means nothing was shrunk), also
  /// the value for kNone and for empty gradients.
  double last_wire_ratio() const { return last_ratio_; }

  const CompressionConfig& config() const { return config_; }

  /// ---- SyncPlan handoff (DESIGN.md §14) ----------------------------------
  /// The error-feedback residual is the codec's only cross-iteration state;
  /// dropping it at a phase boundary would silently bias the first post-
  /// switch update. The phased trainer exports it from the outgoing backend
  /// and adopts it into the successor when the codec kind matches.
  const std::vector<float>& residual() const { return residual_; }
  void adopt_residual(std::vector<float> residual, double last_ratio) {
    residual_ = std::move(residual);
    last_ratio_ = last_ratio;
  }

  /// Wire payload for a `values`-element gradient under this codec (0 for an
  /// empty gradient regardless of codec):
  ///   TopK:   k * (4 value bytes + 4 index bytes), k clamped to [1, values]
  ///   Sign:   1 bit per value (rounded up to whole bytes) + one scale float
  ///   Quant8: 1 byte per value + two scale floats
  static size_t wire_bytes(const CompressionConfig& config, size_t values);

 private:
  CompressionConfig config_;
  std::vector<float> residual_;
  double last_ratio_ = 1.0;
};

}  // namespace selsync
