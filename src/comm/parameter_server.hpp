// Central parameter-server tier (paper [4], §III).
//
// ParameterServer holds one contiguous range of the global model state.
// Two usage patterns:
//  * Synchronous (BSP/FedAvg/SelSync sync phase): workers drive the
//    begin/contribute/await protocol of round() — the single PsRound entry
//    point (pushToPS + pullFromPS of Alg. 1 lines 14-15, fused). PA-mode
//    bookkeeping goes through store().
//  * Asynchronous (SSP): workers apply_gradient_async() at their own pace
//    and pull() whenever they like; enforce_staleness() blocks workers that
//    run more than `s` iterations ahead of the slowest one.
//
// ShardedParameterServer splits the store into K such shards, each owning a
// contiguous parameter range with its own lock/round state — the standard
// fix for the Fig. 1a incast knee (each shard is its own ingest link in the
// cost model; see CostModel::ps_shard_sync_time). K=1 degenerates to the
// single-store PS bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "comm/wait_slot.hpp"

#include "comm/ps_round.hpp"
#include "util/enum_names.hpp"

namespace selsync {

enum class AggregationMode { kParameters, kGradients };

/// Display names (paper terminology); selsync_lint (enum-table) keeps both
/// tables in lockstep with the enumerator list above.
inline constexpr EnumEntry<AggregationMode> kAggregationModeNames[] = {
    {AggregationMode::kParameters, "PA"},
    {AggregationMode::kGradients, "GA"},
};

/// The --aggregation spellings accepted by the CLI tools.
inline constexpr EnumEntry<AggregationMode> kAggregationModeCliNames[] = {
    {AggregationMode::kParameters, "pa"},
    {AggregationMode::kGradients, "ga"},
};

/// A capture of one shard's SSP bookkeeping — the per-worker staleness
/// clocks, finish flags, and absorbed-push counter — carried across SyncPlan
/// phase boundaries so an SSP phase resumed after a switch sees the same
/// staleness picture the predecessor left (DESIGN.md §14). The handoff-sync
/// lint pass pins these fields against ParameterServer's members.
struct SspClockState {
  std::vector<uint64_t> worker_iteration;
  std::vector<bool> worker_done;
  uint64_t async_updates = 0;
};

const char* aggregation_mode_name(AggregationMode mode);

/// "pa" | "ga" -> mode; nullopt for anything else.
std::optional<AggregationMode> aggregation_mode_from_name(
    std::string_view name);

/// The accepted --aggregation spellings, for CLI help and error messages.
std::string aggregation_mode_names();

class ParameterServer {
 public:
  ParameterServer(std::vector<float> initial, size_t workers);

  size_t dim() const { return global_.size(); }
  size_t workers() const { return workers_; }

  /// The shard's one synchronous aggregation protocol (see ps_round.hpp).
  PsRound& round() { return round_; }

  /// Initial model distribution (Alg. 1 line 3).
  std::vector<float> pull() const;

  /// Overwrites the global state (PA-mode bookkeeping after an averaged
  /// round, and tests).
  void store(std::span<const float> params);

  /// ---- SSP support -------------------------------------------------------
  /// Applies w -= lr * grad to the global parameters atomically.
  void apply_gradient_async(std::span<const float> grad, double lr);

  /// Adds a parameter delta atomically (the delta-push variant of
  /// asynchronous PS training: workers run their own optimizer locally and
  /// ship the resulting parameter displacement).
  void apply_delta_async(std::span<const float> delta);

  /// Records that `rank` finished `iteration`, then blocks while
  /// iteration > min(other unfinished workers) + staleness.
  void enforce_staleness(size_t rank, uint64_t iteration, uint64_t staleness);

  /// Marks `rank` as finished so it no longer gates faster workers.
  void finish(size_t rank);

  /// Tears the shard down: every blocked round().await() /
  /// enforce_staleness() call (current and future) throws BarrierAborted,
  /// so a crashed worker cannot strand its peers inside a PS wait. Wired to
  /// run_cluster's abort hook by the trainer.
  void abort();
  bool aborted() const;

  /// How many async pushes the shard has absorbed (test/metric hook).
  uint64_t async_updates() const;

  /// ---- SyncPlan handoff (DESIGN.md §14) ----------------------------------
  /// Captures the staleness clocks for a phase handoff.
  SspClockState ssp_clocks() const;

  /// Restores a capture taken by ssp_clocks() (SSP -> SSP switch).
  void restore_ssp_clocks(const SspClockState& state);

  /// Seeds every worker's clock at `iteration` with no one finished — the
  /// sync -> SSP switch case, where all workers provably exited the previous
  /// phase at the same iteration.
  void seed_worker_clocks(uint64_t iteration);

 private:
  uint64_t min_active_iteration_locked() const;

  // The SSP staleness gate: a leaf lock/cv pair over the shard's global
  // state (the synchronous round protocol lives in PsRound).
  mutable std::mutex mutex_;
  WaitSlot cv_;
  std::vector<float> global_;
  size_t workers_;
  PsRound round_;

  // SSP bookkeeping.
  std::vector<uint64_t> worker_iteration_;
  std::vector<bool> worker_done_;
  uint64_t async_updates_ = 0;
  bool aborted_ = false;
};

/// The sharded PS tier: K ParameterServer shards over contiguous parameter
/// ranges (an even split; the first dim % K shards carry one extra float).
/// Synchronous callers drive shard(k).round() per range — begin/contribute
/// on every shard first, await after, so the K ingests overlap. The
/// asynchronous SSP surface is a facade over the shards: pull()/store()/
/// apply_*_async() split or concatenate per range (not atomic *across*
/// shards, exactly like a real sharded PS); the staleness gate is global to
/// the run and lives on shard 0. abort() fans out to every shard, so a
/// crashed worker releases waiters on all of them.
class ShardedParameterServer {
 public:
  struct Range {
    size_t offset = 0;
    size_t length = 0;
  };

  ShardedParameterServer(std::vector<float> initial, size_t workers,
                         size_t shards = 1);

  size_t dim() const { return dim_; }
  size_t workers() const { return workers_; }
  size_t shards() const { return shards_.size(); }

  Range shard_range(size_t k) const { return ranges_.at(k); }
  ParameterServer& shard(size_t k) { return *shards_.at(k); }

  /// ---- SSP facade (see class comment) ------------------------------------
  std::vector<float> pull() const;
  void store(std::span<const float> params);
  void apply_gradient_async(std::span<const float> grad, double lr);
  void apply_delta_async(std::span<const float> delta);
  void enforce_staleness(size_t rank, uint64_t iteration, uint64_t staleness);
  void finish(size_t rank);

  void abort();
  bool aborted() const;
  /// Facade pushes absorbed (counted once per push, not per shard).
  uint64_t async_updates() const;

  /// SyncPlan handoff: the staleness gate (and the facade's push count)
  /// lives on shard 0, so the clock capture does too.
  SspClockState ssp_clocks() const { return shards_.front()->ssp_clocks(); }
  void restore_ssp_clocks(const SspClockState& state) {
    shards_.front()->restore_ssp_clocks(state);
  }
  void seed_worker_clocks(uint64_t iteration) {
    shards_.front()->seed_worker_clocks(iteration);
  }

 private:
  size_t dim_;
  size_t workers_;
  std::vector<std::unique_ptr<ParameterServer>> shards_;
  std::vector<Range> ranges_;
};

}  // namespace selsync
