// Central parameter server (paper [4], §III).
//
// Holds the global model state. Two usage patterns:
//  * Synchronous (BSP/FedAvg/SelSync sync phase): workers call
//    push_and_average(); the last arriving contribution triggers the
//    average, and every caller leaves with the new global parameters
//    (pushToPS + pullFromPS of Alg. 1 lines 14-15, fused).
//  * Asynchronous (SSP): workers apply_gradient_async() at their own pace
//    and pull() whenever they like; enforce_staleness() blocks workers that
//    run more than `s` iterations ahead of the slowest one.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/enum_names.hpp"

namespace selsync {

enum class AggregationMode { kParameters, kGradients };

/// Display names (paper terminology); selsync_lint (enum-table) keeps both
/// tables in lockstep with the enumerator list above.
inline constexpr EnumEntry<AggregationMode> kAggregationModeNames[] = {
    {AggregationMode::kParameters, "PA"},
    {AggregationMode::kGradients, "GA"},
};

/// The --aggregation spellings accepted by the CLI tools.
inline constexpr EnumEntry<AggregationMode> kAggregationModeCliNames[] = {
    {AggregationMode::kParameters, "pa"},
    {AggregationMode::kGradients, "ga"},
};

const char* aggregation_mode_name(AggregationMode mode);

/// "pa" | "ga" -> mode; nullopt for anything else.
std::optional<AggregationMode> aggregation_mode_from_name(
    std::string_view name);

/// The accepted --aggregation spellings, for CLI help and error messages.
std::string aggregation_mode_names();

class ParameterServer {
 public:
  ParameterServer(std::vector<float> initial, size_t workers);

  size_t dim() const { return global_.size(); }
  size_t workers() const { return workers_; }

  /// Initial model distribution (Alg. 1 line 3).
  std::vector<float> pull() const;

  /// Synchronous group aggregation. `participants` workers contribute
  /// `data`; once all arrive the mean is computed. For kParameters the mean
  /// *replaces* the global state; for kGradients the mean is returned for
  /// workers to apply locally (global state is updated by the subsequent
  /// parameter push in PA mode, or left to drift in GA mode — the paper's
  /// §III-C inconsistency). Returns the aggregated vector.
  std::vector<float> push_and_average(std::span<const float> data,
                                      AggregationMode mode,
                                      size_t participants);

  /// Overwrites the global state (used to keep GA-mode bookkeeping honest
  /// and by tests).
  void store(std::span<const float> params);

  /// Deterministic synchronous aggregation for the PS CommBackend:
  /// contributions land in per-rank slots and the last arriver reduces them
  /// in ascending rank order — the same fixed float summation order
  /// SharedCollectives uses — so rounds are bit-reproducible regardless of
  /// arrival order (push_and_average folds in arrival order and is not).
  /// `participants` callers, each with a distinct `rank` < workers(), must
  /// arrive per round; absent ranks contribute exactly zero. Returns the
  /// sum. The global state is untouched; PA-mode bookkeeping goes through
  /// store().
  std::vector<float> push_and_sum_ranked(size_t rank,
                                         std::span<const float> data,
                                         size_t participants);

  /// ---- SSP support -------------------------------------------------------
  /// Applies w -= lr * grad to the global parameters atomically.
  void apply_gradient_async(std::span<const float> grad, double lr);

  /// Adds a parameter delta atomically (the delta-push variant of
  /// asynchronous PS training: workers run their own optimizer locally and
  /// ship the resulting parameter displacement).
  void apply_delta_async(std::span<const float> delta);

  /// Records that `rank` finished `iteration`, then blocks while
  /// iteration > min(other unfinished workers) + staleness.
  void enforce_staleness(size_t rank, uint64_t iteration, uint64_t staleness);

  /// Marks `rank` as finished so it no longer gates faster workers.
  void finish(size_t rank);

  /// Tears the server down: every blocked push_and_average /
  /// enforce_staleness call (current and future) throws BarrierAborted, so
  /// a crashed worker cannot strand its peers inside a PS wait. Wired to
  /// run_cluster's abort hook by the trainer.
  void abort();
  bool aborted() const;

  /// How many async pushes the server has absorbed (test/metric hook).
  uint64_t async_updates() const;

 private:
  uint64_t min_active_iteration_locked() const;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<float> global_;
  size_t workers_;

  // Synchronous aggregation round state.
  std::vector<float> accum_;
  size_t arrived_ = 0;
  size_t expected_ = 0;
  uint64_t round_ = 0;
  std::vector<float> round_result_;

  // Rank-slotted deterministic aggregation round state
  // (push_and_sum_ranked); kept separate from the arrival-order round so
  // the two entry points cannot corrupt each other.
  std::vector<float> ranked_slots_;  // workers() slots of payload length
  size_t ranked_arrived_ = 0;
  size_t ranked_expected_ = 0;
  uint64_t ranked_round_ = 0;
  std::vector<float> ranked_result_;

  // SSP bookkeeping.
  std::vector<uint64_t> worker_iteration_;
  std::vector<bool> worker_done_;
  uint64_t async_updates_ = 0;
  bool aborted_ = false;
};

}  // namespace selsync
