// The raw TCP tier of the socket transport (DESIGN.md §13).
//
// This file and its .cpp are the ONLY place in the tree allowed to touch
// BSD socket headers — selsync_lint (rule socket-confine) enforces the
// boundary, so connection lifecycle, partial reads/writes and fd hygiene
// have exactly one home. Everything above this layer (the replica RPC
// verbs, the master/worker bootstrap, the worker-process entrypoint) speaks
// TcpConn + WireFormat frames and never sees a file descriptor.
//
// The layer is deliberately small:
//  * TcpListener — bind/listen on 127.0.0.1 (port 0 = ephemeral, the bound
//    port is readable back), accept with a deadline.
//  * TcpConn — a connected stream: send_all/recv_all loops until the buffer
//    is complete or the peer is gone (SocketError), shutdown() unblocks a
//    peer thread parked in recv (the abort path).
//  * tcp_connect — connect with timeout + bounded exponential backoff
//    retries, for workers racing the master's listen().
//  * send_frame/recv_frame — one WireFormat frame per call. recv_frame
//    distinguishes the failure modes loudly: a clean EOF *between* frames
//    is SocketError("peer closed"), an EOF *inside* a frame is
//    WireFormatError("torn frame"), garbage where a header should be is
//    whatever WireFormat's header validation throws.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/wire_format.hpp"

namespace selsync {

/// A peer vanished or the OS refused: connection reset, refused, timed out,
/// or closed under a blocked read/write. Mapped by the trainer onto the
/// same abort path an in-proc worker failure takes.
class SocketError : public std::runtime_error {
 public:
  explicit SocketError(const std::string& what)
      : std::runtime_error("socket: " + what) {}
};

/// A connected TCP stream (move-only; closes on destruction).
class TcpConn {
 public:
  TcpConn() = default;
  explicit TcpConn(int fd) : fd_(fd) {}
  ~TcpConn();
  TcpConn(TcpConn&& other) noexcept;
  TcpConn& operator=(TcpConn&& other) noexcept;
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  bool open() const { return fd_ >= 0; }

  /// Writes the whole buffer or throws SocketError.
  void send_all(const uint8_t* data, size_t size);
  /// Reads exactly `size` bytes or throws SocketError. `*got` (optional)
  /// reports how many bytes had already arrived when a short read failed —
  /// recv_frame uses it to tell a clean close from a torn frame.
  void recv_all(uint8_t* data, size_t size, size_t* got = nullptr);

  /// Half-closes both directions: a peer (or sibling thread) blocked in
  /// recv_all wakes up with SocketError. Safe to call from another thread
  /// and safe to call twice — this is the abort path.
  void shutdown();
  void close();

 private:
  int fd_ = -1;
};

/// A listening socket on 127.0.0.1.
class TcpListener {
 public:
  /// Binds and listens; port 0 picks an ephemeral port (read it back with
  /// port()). Throws SocketError on any failure.
  explicit TcpListener(uint16_t port, int backlog = 64);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  uint16_t port() const { return port_; }

  /// Accepts one connection, waiting at most `timeout_s` seconds. A
  /// deadline miss throws SocketError naming the timeout — the bootstrap's
  /// "worker never connected" failure mode.
  TcpConn accept(double timeout_s);

  void close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// Connects to host:port, waiting at most `timeout_s` per attempt and
/// retrying `retries` times with bounded exponential backoff (workers race
/// the master's listen during bootstrap). Throws SocketError when the
/// budget is spent.
TcpConn tcp_connect(const std::string& host, uint16_t port, double timeout_s,
                    int retries = 5);

/// One WireFormat frame out: header + payload.
void send_frame(TcpConn& conn, uint16_t verb,
                const std::vector<uint8_t>& payload);

/// One WireFormat frame in; returns the payload, sets `*verb`. See the file
/// comment for how the failure modes are distinguished.
std::vector<uint8_t> recv_frame(TcpConn& conn, uint16_t* verb);

}  // namespace selsync
