// Pluggable communication backends for the simulated cluster.
//
// A CommBackend is the seam between the training loop and the machinery
// that moves aggregation payloads (DESIGN.md §8). The WorkerLoop speaks
// only this interface; which protocol actually carries the bytes — the
// barrier-synchronous shared-memory collectives, the channel-based ring,
// the log(N) reduction tree, or a central parameter server — is selected
// once, by TrainJob::backend / selsync_cli --backend, instead of being
// branched on inside the loop.
//
// Division of labour, fixed across backends so runs stay comparable:
//  * allreduce() is the data plane: it carries the payload and accrues any
//    backend-injected fault delay (ring/tree chunk retransmits) onto the
//    calling worker's simulated clock.
//  * allgather_flags / broadcast / allreduce_max / barrier are the control
//    plane. Every backend routes them over the shared-memory bus: they are
//    tiny, latency-bound, and keeping them on one deterministic path means
//    the *decision* sequence (votes, stop flags, recovery syncs) is
//    identical across backends — which is what makes cross-backend
//    bit-parity testable at all. Their simulated cost is charged separately
//    (StepTimeModel::flag_time).
//  * sync_transfer_time() is the per-op cost account: the simulated seconds
//    one synchronization round moving `wire_bytes` costs on this backend's
//    network schedule.
//  * sync_fault_penalty() is the per-op fault account: the simulated-time
//    penalty injected message/RPC faults charge the rank at a
//    synchronization point. Backends that inject per chunk inside
//    allreduce() (ring, tree) return 0 here.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "comm/cost_model.hpp"

namespace selsync {

class FaultInjector;
class ParameterServer;

/// Which protocol carries aggregation payloads. kSharedMemory and kRing are
/// the seed's two transports (bit-deterministic shared buffers; the
/// bandwidth-optimal message-passing ring). kTree is a log(N)-deep
/// reduction tree over point-to-point channels. kParameterServer routes
/// synchronous rounds through a central ParameterServer instance.
enum class BackendKind { kSharedMemory, kRing, kTree, kParameterServer };

const char* backend_kind_name(BackendKind kind);

/// Parses "shared" | "ring" | "tree" | "ps"; throws std::invalid_argument.
BackendKind parse_backend_kind(const std::string& name);

/// Simulated-time penalty for the two message legs (push + pull) of one PS
/// interaction on a shared-bus transport; channel transports inject their
/// faults per chunk instead. Drops cost the sender the retransmit timeout,
/// delays the configured lateness; duplicates are deduplicated for free and
/// only logged.
double message_leg_penalty(FaultInjector& faults, size_t rank, uint64_t it);

/// PS-RPC timeout retries with exponential backoff. Synchronous rounds
/// cannot be skipped by one worker, so they absorb every backoff and
/// complete (`allow_give_up` false); SSP steps give up past max_retries and
/// proceed degraded (`*gave_up` set).
double ps_retry_penalty(FaultInjector& faults, size_t rank, uint64_t it,
                        bool allow_give_up, bool* gave_up);

class CommBackend {
 public:
  virtual ~CommBackend() = default;

  virtual BackendKind kind() const = 0;
  const char* name() const { return backend_kind_name(kind()); }

  /// ---- data plane -------------------------------------------------------
  /// In-place sum-allreduce of `data` over `group`. Fault delays the
  /// backend injects per chunk accrue onto `clock` (simulated seconds).
  virtual void allreduce(WorkerContext& ctx, std::vector<float>& data,
                         const CommGroup& group, double& clock) = 0;

  /// ---- control plane (shared bus on every backend; see file comment) ----
  virtual std::vector<uint8_t> allgather_flags(WorkerContext& ctx,
                                               uint8_t flag,
                                               const CommGroup& group);
  virtual void broadcast(WorkerContext& ctx, size_t root,
                         std::vector<float>& data, const CommGroup& group);
  virtual double allreduce_max(WorkerContext& ctx, double value,
                               const CommGroup& group);
  virtual void barrier(WorkerContext& ctx, const CommGroup& group);

  /// ---- central store (PS-style backends only) ---------------------------
  /// The parameter server behind this backend, or nullptr. SSP's push/pull
  /// path and its staleness bound run against this store.
  virtual ParameterServer* central_store() { return nullptr; }

  /// ---- per-op cost accounting -------------------------------------------
  /// Simulated seconds one synchronization round moving `wire_bytes` costs
  /// on this backend for a `workers`-rank cluster (transfer only; codec
  /// cost is added by StepTimeModel).
  virtual double sync_transfer_time(const CostModel& cost, size_t wire_bytes,
                                    size_t workers) const = 0;

  /// ---- fault-injection accounting ---------------------------------------
  /// Simulated-time penalty injected message/RPC faults charge `rank` at a
  /// synchronization point (drawn from the rank's deterministic fault
  /// stream). Backends injecting per chunk inside allreduce() return 0.
  virtual double sync_fault_penalty(FaultInjector& faults, size_t rank,
                                    uint64_t iteration);

  /// Teardown: unblock any worker parked inside a backend primitive
  /// (channel recv, PS condition wait). Wired to run_cluster's abort hook.
  virtual void abort() {}
};

/// Everything a backend needs at construction. `collectives` are reached
/// through the per-call WorkerContext, so backends can be built before the
/// cluster threads exist.
struct CommBackendConfig {
  BackendKind kind = BackendKind::kSharedMemory;
  size_t workers = 1;
  /// Which topology the shared-memory backend's cost/fault accounting
  /// stands in for (the seed's TrainJob::topology semantics).
  Topology topology = Topology::kParameterServer;
  /// Optional fault injector shared by the whole run.
  FaultInjector* faults = nullptr;
  /// Seed model for the parameter-server backend's central store; ignored
  /// by the others.
  std::vector<float> initial_params;
};

std::unique_ptr<CommBackend> make_comm_backend(const CommBackendConfig& config);

}  // namespace selsync
