// Pluggable communication backends for the simulated cluster.
//
// A CommBackend is the seam between the training loop and the machinery
// that moves aggregation payloads (DESIGN.md §8). The WorkerLoop speaks
// only this interface; which protocol actually carries the bytes — the
// barrier-synchronous shared-memory collectives, the channel-based ring,
// the log(N) reduction tree, or a central parameter server — is selected
// once, by TrainJob::backend / selsync_cli --backend, instead of being
// branched on inside the loop.
//
// Division of labour, fixed across backends so runs stay comparable:
//  * allreduce() / allreduce_encoded() are the data plane. allreduce()
//    carries a dense payload and accrues any backend-injected fault delay
//    (ring/tree chunk retransmits) onto the calling worker's simulated
//    clock. allreduce_encoded() is the gradient path: each backend owns an
//    optional gradient codec (paper §II-D baselines) and moves *encoded*
//    payloads — the shared-memory and PS backends compress the full vector
//    before it enters the bus / push RPC, the ring re-encodes each
//    reduce-scatter hop and ships reduced chunks encoded-once through the
//    allgather, the tree encodes each rank's contribution once on the way
//    up and the reduced vector once on the way down. The achieved
//    wire-vs-dense ratio is returned for cost accounting.
//  * allgather_flags / broadcast / allreduce_max / barrier are the control
//    plane. Every backend routes them over the shared-memory bus: they are
//    tiny, latency-bound, and keeping them on one deterministic path means
//    the *decision* sequence (votes, stop flags, recovery syncs) is
//    identical across backends — which is what makes cross-backend
//    bit-parity testable at all. Their simulated cost is charged separately
//    (StepTimeModel::flag_time).
//  * sync_cost() is the per-round cost account: one SyncCost breakdown —
//    transfer on this backend's network schedule, codec encode/decode
//    compute, wire-vs-dense byte counts — per synchronization round.
//  * charge_sync_faults() is the per-round fault account: the simulated-time
//    penalty injected message/RPC faults charge the rank at a
//    synchronization point accrues into SyncCost::fault_penalty_s. Backends
//    that inject per chunk inside the data plane (ring, tree) charge only
//    the RPC penalties their priced topology implies.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "comm/cluster.hpp"
#include "comm/cost_model.hpp"
#include "comm/compression.hpp"
#include "comm/parameter_server.hpp"
#include "comm/slice_schedule.hpp"
#include "util/enum_names.hpp"

namespace selsync {

class ChunkCodec;
class FaultInjector;
class ShardedParameterServer;

/// Which protocol carries aggregation payloads. kSharedMemory and kRing are
/// the seed's two transports (bit-deterministic shared buffers; the
/// bandwidth-optimal message-passing ring). kTree is a log(N)-deep
/// reduction tree over point-to-point channels. kParameterServer routes
/// synchronous rounds through a central ParameterServer instance.
enum class BackendKind { kSharedMemory, kRing, kTree, kParameterServer };

/// Canonical --backend spellings; selsync_lint (enum-table) keeps this table
/// in lockstep with the enumerator list above.
inline constexpr EnumEntry<BackendKind> kBackendKindNames[] = {
    {BackendKind::kSharedMemory, "shared"},
    {BackendKind::kRing, "ring"},
    {BackendKind::kTree, "tree"},
    {BackendKind::kParameterServer, "ps"},
};

const char* backend_kind_name(BackendKind kind);

/// "shared" | "ring" | "tree" | "ps" -> kind; nullopt for anything else.
std::optional<BackendKind> backend_kind_from_name(std::string_view name);

/// The accepted --backend spellings, for CLI help and error messages.
std::string backend_kind_names();

/// Which carrier moves a run's replica payloads (DESIGN.md §13). kInproc is
/// the simulated cluster: every rank is a thread/fiber of one process and
/// payloads move through memory. kTcp forks one worker *process* per rank
/// and moves every replica payload (gradients, parameters, checkpoint
/// verbs) over real loopback TCP in WireFormat frames — training dynamics
/// stay bit-identical (the socket tier re-runs the golden grid to prove
/// it), while SyncCost picks up measured wall-clock for cost-model
/// calibration.
enum class TransportKind { kInproc, kTcp };

/// Canonical --transport spellings; selsync_lint (enum-table) keeps this
/// table in lockstep with the enumerator list above.
inline constexpr EnumEntry<TransportKind> kTransportKindNames[] = {
    {TransportKind::kInproc, "inproc"},
    {TransportKind::kTcp, "tcp"},
};

const char* transport_kind_name(TransportKind kind);

/// "inproc" | "tcp" -> kind; nullopt for anything else.
std::optional<TransportKind> transport_kind_from_name(std::string_view name);

/// The accepted --transport spellings, for CLI help and error messages.
std::string transport_kind_names();

/// Simulated-time penalty for the two message legs (push + pull) of one PS
/// interaction on a shared-bus transport; channel transports inject their
/// faults per chunk instead. Drops cost the sender the retransmit timeout,
/// delays the configured lateness; duplicates are deduplicated for free and
/// only logged.
double message_leg_penalty(FaultInjector& faults, size_t rank, uint64_t it);

/// PS-RPC timeout retries with exponential backoff. Synchronous rounds
/// cannot be skipped by one worker, so they absorb every backoff and
/// complete (`allow_give_up` false); SSP steps give up past max_retries and
/// proceed degraded (`*gave_up` set).
double ps_retry_penalty(FaultInjector& faults, size_t rank, uint64_t it,
                        bool allow_give_up, bool* gave_up);

/// The priced breakdown of one synchronization round on one backend: what
/// the round's simulated seconds are spent on and how many bytes actually
/// crossed the wire. Replaces the former scalar sync_transfer_time /
/// sync_fault_penalty pair so compression and faults are accounted per
/// backend, not folded into one opaque number.
struct SyncCost {
  /// Transfer of `wire_bytes` on the backend's network schedule.
  double transfer_s = 0.0;
  /// Codec compute: compress the dense gradient / decompress the received
  /// payload (zero when the payload shipped dense).
  double encode_s = 0.0;
  double decode_s = 0.0;
  /// Injected message/RPC fault penalties drawn at this sync point.
  double fault_penalty_s = 0.0;
  /// Bytes on the wire vs. the dense payload they stand in for.
  size_t wire_bytes = 0;
  size_t dense_bytes = 0;
  /// The central ingest tier, when this backend has one (the ps backend):
  /// how many shards split the store, the busiest shard's share of the
  /// wire bytes, and that shard's ingest transfer time (the round's
  /// critical path — equals transfer_s on the PS schedule). All zero on
  /// backends without a central store.
  size_t ps_shards = 0;
  size_t max_shard_wire_bytes = 0;
  double max_ingest_s = 0.0;
  /// The sliced data plane (DESIGN.md §12), when the round moved more than
  /// one priority slice: how many slices the payload split into, the wire
  /// bytes of the largest single slice (the burst one slice sync puts on
  /// the links), and the transfer seconds the overlapped timeline hid
  /// behind backward compute. All zero on single-slice (step-end barrier)
  /// rounds, so the fields — JSON-gated like ps_shards — never perturb
  /// golden records.
  size_t slices = 0;
  size_t max_slice_wire_bytes = 0;
  double overlap_saved_s = 0.0;
  /// Measured reality (DESIGN.md §13), when the round's payloads rode the
  /// tcp transport: host wall-clock seconds the round's replica I/O took
  /// and the WireFormat frame bytes that actually crossed the loopback
  /// wire. Both zero on the inproc transport, and deliberately OUTSIDE
  /// round_time()/total_time() — the simulated clock stays a pure function
  /// of the job; these fields exist to calibrate the CostModel against a
  /// real wire (EXPERIMENTS.md has the recipe).
  double measured_sync_s = 0.0;
  size_t measured_wire_bytes = 0;

  /// The aligned-clock charge of the round (what lands on every worker's
  /// clock after allreduce_max): transfer plus codec compute, minus what
  /// comm/compute overlap hid (overlap_saved_s is 0.0 on non-overlapped
  /// rounds, leaving the legacy sum bit-exact).
  double round_time() const {
    return transfer_s + (encode_s + decode_s) - overlap_saved_s;
  }
  /// Everything, including this rank's fault penalties (charged before
  /// clock alignment, so they drag the whole round — paper §II-A).
  double total_time() const { return round_time() + fault_penalty_s; }
  double wire_ratio() const {
    return dense_bytes == 0 ? 1.0
                            : static_cast<double>(wire_bytes) /
                                  static_cast<double>(dense_bytes);
  }
};

/// Accumulated SyncCost over a run's synchronization rounds (byte counts as
/// doubles: paper-scale totals overflow size_t long before they overflow a
/// double's integer range).
struct SyncCostTotals {
  uint64_t rounds = 0;
  double transfer_s = 0.0;
  double encode_s = 0.0;
  double decode_s = 0.0;
  double fault_penalty_s = 0.0;
  double wire_bytes = 0.0;
  double dense_bytes = 0.0;
  /// Central ingest tier (zero unless the run priced a PS store): the shard
  /// count observed (max over rounds), the accumulated busiest-shard wire
  /// bytes, and the accumulated busiest-shard ingest time.
  uint64_t ps_shards = 0;
  double max_shard_wire_bytes = 0.0;
  double max_ingest_s = 0.0;
  /// Sliced data plane (zero unless a round ran sliced): the slice count
  /// observed (max over rounds), the accumulated per-round largest-slice
  /// wire bytes, and the accumulated transfer time hidden by overlap.
  uint64_t slices = 0;
  double max_slice_wire_bytes = 0.0;
  double overlap_saved_s = 0.0;
  /// Measured tcp-transport reality (zero on inproc runs): accumulated host
  /// wall-clock seconds of replica I/O and accumulated frame bytes on the
  /// loopback wire.
  double measured_sync_s = 0.0;
  double measured_wire_bytes = 0.0;

  void add(const SyncCost& cost) {
    ++rounds;
    transfer_s += cost.transfer_s;
    encode_s += cost.encode_s;
    decode_s += cost.decode_s;
    fault_penalty_s += cost.fault_penalty_s;
    wire_bytes += static_cast<double>(cost.wire_bytes);
    dense_bytes += static_cast<double>(cost.dense_bytes);
    if (cost.ps_shards > ps_shards) ps_shards = cost.ps_shards;
    max_shard_wire_bytes += static_cast<double>(cost.max_shard_wire_bytes);
    max_ingest_s += cost.max_ingest_s;
    if (cost.slices > slices) slices = cost.slices;
    max_slice_wire_bytes += static_cast<double>(cost.max_slice_wire_bytes);
    overlap_saved_s += cost.overlap_saved_s;
    measured_sync_s += cost.measured_sync_s;
    measured_wire_bytes += static_cast<double>(cost.measured_wire_bytes);
  }
};

/// The backend-owned state that must survive a SyncPlan phase switch
/// (DESIGN.md §14): the gradient codec's error-feedback residuals (full-
/// vector, per-slice, and per-chunk-slot variants), the central store's
/// parameters, and the SSP staleness clocks. extract_handoff() fills the
/// fields the outgoing backend owns; adopt_handoff() installs whatever the
/// successor can reuse (codec residuals only when the codec kind matches,
/// store/clocks only on PS-style backends). The handoff-sync lint pass pins
/// these fields against the codec/PS members they mirror.
struct BackendHandoff {
  /// Which codec produced the residuals below (kNone = no codec state).
  CompressionKind codec_kind = CompressionKind::kNone;
  /// Per-rank full-vector error-feedback residual + last wire ratio
  /// (GradientCompressor state; shared-memory / PS data planes).
  std::vector<std::vector<float>> codec_residuals;
  std::vector<double> codec_ratios;
  /// Per-rank per-slice residual maps (the backend-owned slice ChunkCodec).
  std::vector<std::map<size_t, std::vector<float>>> slice_residuals;
  /// Per-rank per-slot residual maps (the ring/tree chunk ChunkCodec).
  std::vector<std::map<size_t, std::vector<float>>> chunk_residuals;
  /// Central store (PS-style backends): the parameters at the boundary and
  /// the SSP staleness clocks. has_store false on store-less backends.
  bool has_store = false;
  std::vector<float> store_params;
  SspClockState ssp_clocks;
};

class CommBackend {
 public:
  virtual ~CommBackend();  // out of line: owns a forward-declared ChunkCodec

  virtual BackendKind kind() const = 0;
  const char* name() const { return backend_kind_name(kind()); }

  /// ---- data plane -------------------------------------------------------
  /// In-place sum-allreduce of `data` over `group`. Fault delays the
  /// backend injects per chunk accrue onto `clock` (simulated seconds).
  virtual void allreduce(WorkerContext& ctx, std::vector<float>& data,
                         const CommGroup& group, double& clock) = 0;

  /// Gradient-payload allreduce through this backend's codec: compresses
  /// `grad` (per-rank error-feedback state lives in the backend), applies
  /// the caller's contribution `weight`, moves the encoded payload, and
  /// leaves the summed reconstruction in `grad`. Returns the achieved
  /// wire/dense byte ratio for the round (1.0 without a codec). `delta` is
  /// the caller's current Δ(g), consumed by the adaptive Top-k mode.
  ///
  /// The base implementation — kept by the shared-memory and PS backends —
  /// compresses the full vector exactly as the pre-fusion trainer did
  /// (compress, then weight, then allreduce), which anchors golden parity;
  /// the chunked transports override it to encode per chunk-hop.
  virtual double allreduce_encoded(WorkerContext& ctx,
                                   std::vector<float>& grad,
                                   const CommGroup& group, double& clock,
                                   double delta, float weight);

  /// Sliced data-plane driver (DESIGN.md §12): moves `data` — whose length
  /// must equal `sched.total_params()` — slice by slice in the schedule's
  /// priority order instead of as one step-end payload, weighting by
  /// `weight` and (when `encoded` and a codec is configured) encoding each
  /// slice with per-slice error feedback. Every rank must call with the
  /// same schedule; each slice is one collective round, so the slices of a
  /// round interleave across ranks exactly like consecutive allreduces.
  /// Returns the round's achieved wire/dense ratio.
  ///
  /// A single-slice schedule takes the exact legacy code paths
  /// (allreduce_encoded for gradients, weight-then-allreduce for
  /// parameters), which is what keeps `--slices 1` byte-identical to the
  /// pre-slicing pipeline. Multi-slice rounds weight *before* encoding
  /// (ring chunk semantics — Top-k selection is scale-invariant, so the
  /// codec agrees with the legacy order).
  double allreduce_sliced(WorkerContext& ctx, std::vector<float>& data,
                          const SliceSchedule& sched, const CommGroup& group,
                          double& clock, double delta, float weight,
                          bool encoded);

  /// ---- control plane (shared bus on every backend; see file comment) ----
  virtual std::vector<uint8_t> allgather_flags(WorkerContext& ctx,
                                               uint8_t flag,
                                               const CommGroup& group);
  virtual void broadcast(WorkerContext& ctx, size_t root,
                         std::vector<float>& data, const CommGroup& group);
  virtual double allreduce_max(WorkerContext& ctx, double value,
                               const CommGroup& group);
  virtual void barrier(WorkerContext& ctx, const CommGroup& group);

  /// ---- central store (PS-style backends only) ---------------------------
  /// The (sharded) parameter-server tier behind this backend, or nullptr.
  /// SSP's push/pull path and its staleness bound run against this store.
  virtual ShardedParameterServer* central_store() { return nullptr; }

  /// ---- per-round cost accounting ----------------------------------------
  /// Prices one synchronization round: a dense payload of `dense_bytes`
  /// moved at `wire_ratio` (from allreduce_encoded) on this backend's
  /// schedule for a `workers`-rank cluster. Fills transfer, codec
  /// encode/decode and the byte counts; fault_penalty_s is the caller's
  /// (accrued via charge_sync_faults).
  SyncCost sync_cost(const CostModel& cost, size_t dense_bytes,
                     size_t workers, double wire_ratio = 1.0) const;

  /// ---- fault-injection accounting ---------------------------------------
  /// Accrues into `cost.fault_penalty_s` the simulated-time penalty
  /// injected message/RPC faults charge `rank` at a synchronization point
  /// (drawn from the rank's deterministic fault stream). Backends injecting
  /// per chunk inside the data plane add only their priced topology's RPC
  /// penalties. Default: no-op.
  virtual void charge_sync_faults(SyncCost& cost, FaultInjector& faults,
                                  size_t rank, uint64_t iteration);

  /// Teardown: unblock any worker parked inside a backend primitive
  /// (channel recv, PS condition wait). Wired to run_cluster's abort hook.
  virtual void abort() {}

  /// ---- SyncPlan phase lifecycle (DESIGN.md §14) --------------------------
  /// Quiesces in-flight rounds before extract_handoff(). The phased trainer
  /// only calls this after every worker thread has exited at the phase's
  /// iteration boundary, so for the in-tree backends there is nothing left
  /// in flight and the base no-op suffices; the hook exists so a backend
  /// with genuinely asynchronous machinery can flush it here.
  virtual void drain() {}

  /// Captures the state the next phase's backend may need. Base: the
  /// gradient codec's per-rank residuals (full-vector + slice). Overridden
  /// by the chunked transports (per-chunk-slot residuals) and the PS
  /// backend (central store + SSP clocks).
  virtual BackendHandoff extract_handoff() const;

  /// Installs whatever this backend can reuse from a predecessor's capture:
  /// codec residuals when the codec kind matches (a codec change makes the
  /// old residuals meaningless — they are dropped, exactly like a cold
  /// start), store parameters and clocks on PS-style backends.
  virtual void adopt_handoff(const BackendHandoff& state);

  /// The codec fused into this backend's data plane (kind kNone = dense).
  const CompressionConfig& codec() const { return codec_; }

 protected:
  /// Backends own their codec: one GradientCompressor per rank (each rank's
  /// error-feedback residual is touched only by that rank's thread), or —
  /// for the chunked transports — a ChunkCodec built by the subclass from
  /// the same config.
  CommBackend(const CompressionConfig& codec, size_t workers);

  bool has_codec() const { return codec_.kind != CompressionKind::kNone; }
  GradientCompressor& rank_codec(size_t rank) { return codecs_.at(rank); }

  /// The transfer term of sync_cost(): simulated seconds one round moving
  /// `wire_bytes` costs on this backend's network schedule.
  virtual double transfer_time(const CostModel& cost, size_t wire_bytes,
                               size_t workers) const = 0;

  /// How many shards the backend's central ingest tier splits into; 0 for
  /// backends without one. Drives the SyncCost ps_shards/max-ingest fields.
  virtual size_t ingest_shards() const { return 0; }

  /// ---- sliced data-plane hooks (called by allreduce_sliced) -------------
  /// Opens a multi-slice codec round for `rank`. Only called when the round
  /// is coded (encoded + codec configured). Base: the backend-owned slice
  /// ChunkCodec; the chunked transports route to their own ChunkCodec so
  /// wire accounting lands where their chunk hops charge it.
  virtual void begin_sliced_round(size_t rank, double delta);

  /// Moves one slice: `slice` spans [offset, offset+size) of the flat
  /// payload, `index` is its position in the schedule's emission order
  /// (the codec residual key). Base implementation: full-slice codec
  /// transform + the backend's dense allreduce — correct for any backend
  /// whose allreduce accepts arbitrary lengths; the chunked transports
  /// override to encode per chunk-hop, the PS backend to run sub-range
  /// shard rounds.
  virtual void slice_round(WorkerContext& ctx, std::span<float> slice,
                           size_t offset, size_t index, const CommGroup& group,
                           double& clock, bool coded);

  /// The coded round's accumulated wire/dense ratio for `rank`.
  virtual double sliced_round_ratio(size_t rank);

  /// The backend-owned per-(rank, slice) codec state the base hooks use
  /// (null without a codec). Subclass hooks may share it.
  ChunkCodec* slice_codec() { return slice_codec_.get(); }

 private:
  CompressionConfig codec_;
  std::vector<GradientCompressor> codecs_;  // one per rank
  std::unique_ptr<ChunkCodec> slice_codec_;
};

/// Everything a backend needs at construction. `collectives` are reached
/// through the per-call WorkerContext, so backends can be built before the
/// cluster threads exist.
struct CommBackendConfig {
  BackendKind kind = BackendKind::kSharedMemory;
  /// Which carrier the run's replica payloads ride (TrainJob::transport).
  /// The backend's protocol machinery itself always runs in the master
  /// process — under kTcp the payloads it aggregates arrive from and
  /// return to out-of-process replicas over the socket tier, so the field
  /// is carried here for observability and validation, not branched on by
  /// the protocol code.
  TransportKind transport = TransportKind::kInproc;
  size_t workers = 1;
  /// Which topology the shared-memory backend's cost/fault accounting
  /// stands in for (the seed's TrainJob::topology semantics).
  Topology topology = Topology::kParameterServer;
  /// Optional fault injector shared by the whole run.
  FaultInjector* faults = nullptr;
  /// Gradient codec fused into the backend's data plane (TrainJob::
  /// compression); kNone moves dense payloads.
  CompressionConfig compression;
  /// Seed model for the parameter-server backend's central store; ignored
  /// by the others.
  std::vector<float> initial_params;
  /// How many contiguous-range shards the ps backend splits its central
  /// store into (TrainJob::ps_shards); ignored by the others. 1 = the
  /// single-store PS.
  size_t ps_shards = 1;
};

std::unique_ptr<CommBackend> make_comm_backend(const CommBackendConfig& config);

}  // namespace selsync
