// WaitSlot: one blocking point, two engines.
//
// Every blocking primitive in src/comm (channel recv, barrier wait, PsRound
// await, the SSP staleness gate, the rejoin rendezvous) used to wait on a
// std::condition_variable. WaitSlot keeps exactly that interface — a
// predicate wait under a std::unique_lock plus notify_one/notify_all — and
// routes it by engine:
//
//  * on a real thread (EventLoop::current() == nullptr) it IS a condition
//    variable: identical codegen path, identical TSan visibility, so the
//    chaos label still exercises the real locks;
//  * on a DES fiber it parks the fiber on the slot's DesWaitQueue and lets
//    the EventLoop resume it in deterministic (vtime, rank, seq) order.
//
// The DES path is lost-wakeup-free by run-to-completion: fibers only switch
// inside park(), so between the predicate check and the park no other fiber
// can run, and a notify that happens before the wait leaves the predicate
// already true. The predicate is re-checked after every wake, mirroring the
// cv's spurious-wakeup contract, so callers need no engine awareness at all.
#pragma once

#include <condition_variable>
#include <mutex>

#include "comm/event_loop.hpp"

namespace selsync {

// WaitSlot is the engine-dispatch blocking primitive itself; the cv half
// lives here because it can live nowhere else. (No lint waiver needed:
// raw-thread's scope already licenses all of src/comm/.)
class WaitSlot {
 public:
  /// Blocks until `pred()` holds, releasing `lock` while waiting. Exactly
  /// std::condition_variable::wait(lock, pred) on the thread engine.
  template <typename Pred>
  void wait(std::unique_lock<std::mutex>& lock, Pred pred) {
    if (EventLoop* loop = EventLoop::current()) {
      while (!pred()) {
        lock.unlock();
        loop->park(parked_);
        lock.lock();
      }
      return;
    }
    cv_.wait(lock, std::move(pred));
  }

  void notify_one() {
    if (EventLoop* loop = EventLoop::current()) {
      loop->wake_one(parked_);
      return;
    }
    cv_.notify_one();
  }

  void notify_all() {
    if (EventLoop* loop = EventLoop::current()) {
      loop->wake_all(parked_);
      return;
    }
    cv_.notify_all();
  }

 private:
  std::condition_variable cv_;
  DesWaitQueue parked_;
};

}  // namespace selsync
