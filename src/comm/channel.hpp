// Bounded-unbounded MPSC/SPSC channel used for point-to-point messaging
// between simulated workers (ring collectives, data injection transport).
#pragma once

#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "comm/wait_slot.hpp"

namespace selsync {

template <typename T>
class Channel {
 public:
  /// Enqueues a message; never blocks (unbounded queue).
  void send(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) throw std::runtime_error("Channel: send after close");
      queue_.push_back(std::move(value));
    }
    cv_.notify_one();
  }

  /// Blocks until a message is available or the channel is closed.
  /// Returns nullopt if closed and drained.
  std::optional<T> recv() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  /// Non-blocking receive.
  std::optional<T> try_recv() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t pending() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  WaitSlot cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace selsync
