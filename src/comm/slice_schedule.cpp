#include "comm/slice_schedule.hpp"

#include <algorithm>
#include <stdexcept>

namespace selsync {

const char* slice_schedule_kind_name(SliceScheduleKind kind) {
  return enum_name(kSliceScheduleKindNames, kind);
}

std::optional<SliceScheduleKind> slice_schedule_kind_from_name(
    std::string_view name) {
  return enum_from_name(kSliceScheduleKindNames, name);
}

std::string slice_schedule_kind_names() {
  return enum_names(kSliceScheduleKindNames);
}

SliceSchedule SliceSchedule::single(size_t total_params) {
  if (total_params == 0)
    throw std::invalid_argument("SliceSchedule: model has no parameters");
  SliceSchedule sched;
  sched.total_ = total_params;
  sched.slices_.push_back(SyncSlice{0, total_params, 1.0});
  return sched;
}

SliceSchedule SliceSchedule::build(const std::vector<size_t>& layer_sizes,
                                   size_t slices, SliceScheduleKind kind) {
  if (slices == 0)
    throw std::invalid_argument("SliceSchedule: slice count must be >= 1");
  size_t total = 0;
  size_t layers = 0;
  for (size_t size : layer_sizes) {
    total += size;
    layers += size > 0 ? 1 : 0;  // zero-size entries can't carry a slice
  }
  if (total == 0)
    throw std::invalid_argument("SliceSchedule: model has no parameters");

  SliceSchedule sched;
  sched.total_ = total;
  sched.kind_ = kind;

  // Greedy layer-aligned partition balanced by parameter volume: walk layers
  // in flat-vector order and close group g once the cumulative volume crosses
  // the ideal boundary (g+1) * total / groups. Never splits a layer, so with
  // more groups than (non-empty) layers the count saturates at the layer
  // count. Pure integer arithmetic -> the same partition on every rank and
  // both engines.
  const size_t groups = std::min(std::max<size_t>(slices, 1), layers);
  size_t offset = 0;       // running flat offset of the next unassigned layer
  size_t group_start = 0;  // flat offset where the open group began
  size_t emitted = 0;
  size_t remaining = layers;  // non-empty layers not yet consumed
  for (size_t size : layer_sizes) {
    offset += size;
    if (size == 0) continue;
    --remaining;
    // Close the open group when its volume crosses the ideal boundary
    // (emitted+1) * total / groups — but never strand a later group without
    // a layer (must_close), and always close the final group on the last
    // non-empty layer.
    const size_t boundary = (emitted + 1) * total / groups;
    const bool must_close = remaining == groups - emitted - 1;
    if (remaining == 0 ||
        (emitted + 1 < groups && (offset >= boundary || must_close))) {
      sched.slices_.push_back(SyncSlice{group_start, offset - group_start,
                                        0.0});
      group_start = offset;
      ++emitted;
    }
  }

  // Readiness from the partition geometry: backward sweeps from the tail of
  // the flat vector, so a slice starting at offset o is fully ready after
  // (total - o) / total of the backward pass.
  for (SyncSlice& s : sched.slices_) {
    s.ready_fraction =
        static_cast<double>(total - s.offset) / static_cast<double>(total);
  }

  // Emission order: kOutputFirst syncs the highest offsets (output layers,
  // smallest ready_fraction) first — P3 priority order; kInputFirst is the
  // build order already (ascending offsets).
  if (kind == SliceScheduleKind::kOutputFirst)
    std::reverse(sched.slices_.begin(), sched.slices_.end());
  return sched;
}

}  // namespace selsync
