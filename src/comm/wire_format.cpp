#include "comm/wire_format.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace selsync::wire {

namespace {

void put_le(std::vector<uint8_t>& out, uint64_t v, size_t bytes) {
  for (size_t i = 0; i < bytes; ++i)
    out.push_back(static_cast<uint8_t>((v >> (8 * i)) & 0xFF));
}

uint64_t load_le(const uint8_t* p, size_t bytes) {
  uint64_t v = 0;
  for (size_t i = 0; i < bytes; ++i)
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

uint32_t f32_bits(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

float bits_f32(uint32_t bits) {
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

void put_u16(std::vector<uint8_t>& out, uint16_t v) { put_le(out, v, 2); }
void put_u32(std::vector<uint8_t>& out, uint32_t v) { put_le(out, v, 4); }
void put_u64(std::vector<uint8_t>& out, uint64_t v) { put_le(out, v, 8); }
void put_f32(std::vector<uint8_t>& out, float v) {
  put_le(out, f32_bits(v), 4);
}
void put_f64(std::vector<uint8_t>& out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_le(out, bits, 8);
}

uint16_t Reader::u16() {
  return static_cast<uint16_t>(load_le(bytes(2), 2));
}
uint32_t Reader::u32() {
  return static_cast<uint32_t>(load_le(bytes(4), 4));
}
uint64_t Reader::u64() { return load_le(bytes(8), 8); }
float Reader::f32() {
  return bits_f32(static_cast<uint32_t>(load_le(bytes(4), 4)));
}
double Reader::f64() {
  const uint64_t bits = load_le(bytes(8), 8);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

const uint8_t* Reader::bytes(size_t n) {
  if (size_ - at_ < n)
    throw WireFormatError("short read: wanted " + std::to_string(n) +
                          " bytes, payload has " +
                          std::to_string(size_ - at_) + " left");
  const uint8_t* p = data_ + at_;
  at_ += n;
  return p;
}

void Reader::expect_end() const {
  if (at_ != size_)
    throw WireFormatError("trailing garbage: " +
                          std::to_string(size_ - at_) +
                          " bytes past the end of the payload");
}

std::vector<uint8_t> encode_header(uint16_t verb, uint64_t payload_len) {
  std::vector<uint8_t> out;
  out.reserve(kHeaderBytes);
  put_u32(out, kMagic);
  put_u16(out, kWireVersion);
  put_u16(out, verb);
  put_u64(out, payload_len);
  return out;
}

FrameHeader decode_header(const uint8_t* data, size_t size) {
  if (size < kHeaderBytes)
    throw WireFormatError("torn frame: header is " + std::to_string(size) +
                          " of " + std::to_string(kHeaderBytes) + " bytes");
  Reader in(data, kHeaderBytes);
  const uint32_t magic = in.u32();
  if (magic != kMagic)
    throw WireFormatError("bad magic 0x" + [&] {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%08x", magic);
      return std::string(buf);
    }() + " (not a selsync frame, or a torn stream)");
  const uint16_t version = in.u16();
  if (version != kWireVersion)
    throw WireFormatError("version " + std::to_string(version) +
                          " on the wire, this build speaks " +
                          std::to_string(kWireVersion));
  FrameHeader header;
  header.verb = in.u16();
  header.payload_len = in.u64();
  return header;
}

void put_f32s(std::vector<uint8_t>& out, const std::vector<float>& v) {
  out.reserve(out.size() + v.size() * 4);
  for (float x : v) put_f32(out, x);
}

std::vector<float> get_f32s(Reader& in, size_t count) {
  std::vector<float> v;
  v.reserve(count);
  for (size_t i = 0; i < count; ++i) v.push_back(in.f32());
  return v;
}

size_t chunk_wire_bytes(const CompressionConfig& config, size_t values) {
  if (values == 0) return 0;  // nothing to ship, whatever the codec
  switch (config.kind) {
    case CompressionKind::kNone:
      return values * sizeof(float);
    case CompressionKind::kTopK: {
      const auto k = static_cast<size_t>(
          std::ceil(config.topk_fraction * static_cast<double>(values)));
      // At least one entry always ships (a tiny gradient cannot round the
      // payload down to nothing), and never more than the gradient holds.
      return std::clamp<size_t>(k, 1, values) *
             (sizeof(float) + sizeof(uint32_t));
    }
    case CompressionKind::kSignSgd:
      return (values + 7) / 8 + sizeof(float);  // whole bytes on the wire
    case CompressionKind::kQuant8:
      return values + 2 * sizeof(float);
  }
  return values * sizeof(float);
}

std::vector<uint8_t> encode_chunk(const CompressionConfig& config,
                                  const std::vector<float>& values) {
  std::vector<uint8_t> out;
  if (values.empty()) return out;
  switch (config.kind) {
    case CompressionKind::kNone:
      put_f32s(out, values);
      break;
    case CompressionKind::kTopK:
      for (size_t i = 0; i < values.size(); ++i) {
        if (values[i] == 0.f) continue;
        put_u32(out, static_cast<uint32_t>(i));
        put_f32(out, values[i]);
      }
      break;
    case CompressionKind::kSignSgd: {
      // Transformed entries are {+m, -m, 0}; recover m as the largest
      // magnitude (0 when the whole chunk is zero).
      float scale = 0.f;
      for (float v : values) scale = std::max(scale, std::fabs(v));
      put_f32(out, scale);
      const size_t bitmap = (values.size() + 7) / 8;
      const size_t base = out.size();
      out.resize(base + bitmap, 0);
      for (size_t i = 0; i < values.size(); ++i)
        if (values[i] >= 0.f)  // exact zero canonicalizes to the + sign
          out[base + i / 8] |= static_cast<uint8_t>(1u << (i % 8));
      break;
    }
    case CompressionKind::kQuant8: {
      float max_abs = 0.f;
      for (float v : values) max_abs = std::max(max_abs, std::fabs(v));
      const float scale = max_abs > 0 ? max_abs / 127.f : 1.f;
      put_f32(out, scale);
      put_f32(out, max_abs);
      for (float v : values) {
        const auto level = static_cast<int>(std::round(v / scale));
        out.push_back(static_cast<uint8_t>(static_cast<int8_t>(level)));
      }
      break;
    }
  }
  return out;
}

std::vector<float> decode_chunk(const CompressionConfig& config,
                                const uint8_t* data, size_t size,
                                size_t dense_count) {
  Reader in(data, size);
  if (dense_count == 0) {
    in.expect_end();
    return {};
  }
  std::vector<float> values;
  switch (config.kind) {
    case CompressionKind::kNone:
      values = get_f32s(in, dense_count);
      break;
    case CompressionKind::kTopK: {
      if (size % 8 != 0)
        throw WireFormatError("torn topk payload: " + std::to_string(size) +
                              " bytes is not a whole number of entries");
      values.assign(dense_count, 0.f);
      const size_t entries = size / 8;
      for (size_t e = 0; e < entries; ++e) {
        const uint32_t index = in.u32();
        const float value = in.f32();
        if (index >= dense_count)
          throw WireFormatError("topk index " + std::to_string(index) +
                                " out of range for a " +
                                std::to_string(dense_count) + "-entry chunk");
        values[index] = value;
      }
      break;
    }
    case CompressionKind::kSignSgd: {
      const float scale = in.f32();
      const uint8_t* bitmap = in.bytes((dense_count + 7) / 8);
      values.reserve(dense_count);
      for (size_t i = 0; i < dense_count; ++i)
        values.push_back((bitmap[i / 8] >> (i % 8)) & 1 ? scale : -scale);
      break;
    }
    case CompressionKind::kQuant8: {
      const float scale = in.f32();
      in.f32();  // max_abs rides for observability; scale alone reconstructs
      const uint8_t* levels = in.bytes(dense_count);
      values.reserve(dense_count);
      for (size_t i = 0; i < dense_count; ++i)
        values.push_back(
            static_cast<float>(static_cast<int8_t>(levels[i])) * scale);
      break;
    }
  }
  in.expect_end();
  return values;
}

}  // namespace selsync::wire
