#include "comm/comm_backend.hpp"

#include <stdexcept>

#include "comm/collectives.hpp"
#include "comm/fault_injector.hpp"
#include "comm/parameter_server.hpp"
#include "comm/tree_allreduce.hpp"

namespace selsync {

const char* backend_kind_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSharedMemory:
      return "shared";
    case BackendKind::kRing:
      return "ring";
    case BackendKind::kTree:
      return "tree";
    case BackendKind::kParameterServer:
      return "ps";
  }
  return "?";
}

BackendKind parse_backend_kind(const std::string& name) {
  if (name == "shared") return BackendKind::kSharedMemory;
  if (name == "ring") return BackendKind::kRing;
  if (name == "tree") return BackendKind::kTree;
  if (name == "ps") return BackendKind::kParameterServer;
  throw std::invalid_argument("unknown backend '" + name +
                              "' (expected shared, ring, tree or ps)");
}

double message_leg_penalty(FaultInjector& faults, size_t rank, uint64_t it) {
  const MessageFaultConfig& m = faults.plan().messages;
  if (!m.any()) return 0.0;
  double penalty = 0.0;
  for (int leg = 0; leg < 2; ++leg) {
    switch (faults.draw_message_fate(rank)) {
      case MessageFate::kDrop:
        faults.record(rank, FaultKind::kMessageDrop, it,
                      m.retransmit_timeout_s);
        penalty += m.retransmit_timeout_s;
        break;
      case MessageFate::kDelay:
        faults.record(rank, FaultKind::kMessageDelay, it, m.delay_s);
        penalty += m.delay_s;
        break;
      case MessageFate::kDuplicate:
        faults.record(rank, FaultKind::kMessageDuplicate, it, 0.0);
        break;
      case MessageFate::kDeliver:
        break;
    }
  }
  return penalty;
}

double ps_retry_penalty(FaultInjector& faults, size_t rank, uint64_t it,
                        bool allow_give_up, bool* gave_up) {
  if (gave_up) *gave_up = false;
  const PsFaultConfig& cfg = faults.plan().ps;
  if (!cfg.any()) return 0.0;
  const size_t timeouts = faults.draw_ps_timeouts(rank);
  double penalty = 0.0;
  for (size_t attempt = 0; attempt < timeouts; ++attempt) {
    penalty += faults.ps_backoff_s(attempt);
    faults.record(rank, FaultKind::kPsTimeout, it,
                  static_cast<double>(attempt));
  }
  if (allow_give_up && timeouts > cfg.max_retries) {
    faults.record(rank, FaultKind::kPsGiveUp, it,
                  static_cast<double>(timeouts));
    if (gave_up) *gave_up = true;
  }
  return penalty;
}

// Control-plane defaults: every backend keeps the tiny latency-bound ops on
// the shared-memory bus (see comm_backend.hpp header comment).
std::vector<uint8_t> CommBackend::allgather_flags(WorkerContext& ctx,
                                                  uint8_t flag,
                                                  const CommGroup& group) {
  return ctx.collectives->allgather_byte(ctx.rank, flag, group);
}

void CommBackend::broadcast(WorkerContext& ctx, size_t root,
                            std::vector<float>& data, const CommGroup& group) {
  ctx.collectives->broadcast(ctx.rank, root, data, group);
}

double CommBackend::allreduce_max(WorkerContext& ctx, double value,
                                  const CommGroup& group) {
  return ctx.collectives->allreduce_max(ctx.rank, value, group);
}

void CommBackend::barrier(WorkerContext& ctx, const CommGroup& group) {
  ctx.collectives->barrier(group);
}

double CommBackend::sync_fault_penalty(FaultInjector&, size_t, uint64_t) {
  return 0.0;
}

namespace {

/// Barrier-synchronous shared-buffer collectives — the seed's default
/// transport. Costs and fault penalties stand in for whichever topology the
/// job declares (PS incast or ring allreduce), exactly as the seed trainer
/// charged them.
class SharedMemBackend final : public CommBackend {
 public:
  explicit SharedMemBackend(Topology topology) : topology_(topology) {}

  BackendKind kind() const override { return BackendKind::kSharedMemory; }

  void allreduce(WorkerContext& ctx, std::vector<float>& data,
                 const CommGroup& group, double&) override {
    ctx.collectives->allreduce_sum(ctx.rank, data, group);
  }

  double sync_transfer_time(const CostModel& cost, size_t wire_bytes,
                            size_t workers) const override {
    return topology_ == Topology::kParameterServer
               ? cost.ps_sync_time(wire_bytes, workers)
               : cost.ring_allreduce_time(wire_bytes, workers);
  }

  double sync_fault_penalty(FaultInjector& faults, size_t rank,
                            uint64_t iteration) override {
    double penalty = message_leg_penalty(faults, rank, iteration);
    if (topology_ == Topology::kParameterServer)
      penalty += ps_retry_penalty(faults, rank, iteration,
                                  /*allow_give_up=*/false, nullptr);
    return penalty;
  }

 private:
  Topology topology_;
};

/// Channel-based bandwidth-optimal ring. Faults are injected per chunk
/// inside RingAllreduce and drained from the injector's pending-delay
/// account onto the caller's clock here.
class RingBackend final : public CommBackend {
 public:
  RingBackend(size_t workers, FaultInjector* faults)
      : faults_(faults), ring_(workers, faults) {}

  BackendKind kind() const override { return BackendKind::kRing; }

  void allreduce(WorkerContext& ctx, std::vector<float>& data,
                 const CommGroup&, double& clock) override {
    ring_.run(ctx.rank, data);
    if (faults_) clock += faults_->take_pending_delay(ctx.rank);
  }

  double sync_transfer_time(const CostModel& cost, size_t wire_bytes,
                            size_t workers) const override {
    // Parity with the seed trainer: the ring *transport* kept charging
    // whatever the job's declared topology priced (the knobs were
    // orthogonal there). The job maps ring -> ring pricing via
    // TrainJob::topology, which the factory threads through here.
    return topology_ == Topology::kParameterServer
               ? cost.ps_sync_time(wire_bytes, workers)
               : cost.ring_allreduce_time(wire_bytes, workers);
  }

  double sync_fault_penalty(FaultInjector& faults, size_t rank,
                            uint64_t iteration) override {
    // Seed parity again: the ring injects message faults per chunk inside
    // run(), but the seed trainer still charged the PS-RPC retry penalty
    // whenever the *priced* topology was the parameter server — and those
    // draws come from the same per-rank RNG stream as the chunk fates, so
    // dropping them would shift every subsequent draw.
    return topology_ == Topology::kParameterServer
               ? ps_retry_penalty(faults, rank, iteration,
                                  /*allow_give_up=*/false, nullptr)
               : 0.0;
  }

  void set_topology(Topology topology) { topology_ = topology; }

  void abort() override { ring_.close_all(); }

 private:
  FaultInjector* faults_;
  RingAllreduce ring_;
  Topology topology_ = Topology::kParameterServer;
};

/// log(N) reduction tree over channels; bit-identical to the shared-memory
/// backend by construction (see tree_allreduce.hpp), priced as the classic
/// tree schedule.
class TreeBackend final : public CommBackend {
 public:
  TreeBackend(size_t workers, FaultInjector* faults)
      : faults_(faults), tree_(workers, faults) {}

  BackendKind kind() const override { return BackendKind::kTree; }

  void allreduce(WorkerContext& ctx, std::vector<float>& data,
                 const CommGroup&, double& clock) override {
    tree_.run(ctx.rank, data);
    if (faults_) clock += faults_->take_pending_delay(ctx.rank);
  }

  double sync_transfer_time(const CostModel& cost, size_t wire_bytes,
                            size_t workers) const override {
    return cost.tree_allreduce_time(wire_bytes, workers);
  }

  void abort() override { tree_.close_all(); }

 private:
  FaultInjector* faults_;
  TreeAllreduce tree_;
};

/// Synchronous rounds routed through a central ParameterServer instance
/// (deterministic rank-slotted aggregation); the same instance is the
/// central store SSP's push/pull path runs against.
class PsBackend final : public CommBackend {
 public:
  PsBackend(std::vector<float> initial, size_t workers)
      : ps_(std::move(initial), workers) {}

  BackendKind kind() const override { return BackendKind::kParameterServer; }

  void allreduce(WorkerContext& ctx, std::vector<float>& data,
                 const CommGroup& group, double&) override {
    data = ps_.push_and_sum_ranked(ctx.rank, data, group.size);
  }

  double sync_transfer_time(const CostModel& cost, size_t wire_bytes,
                            size_t workers) const override {
    return cost.ps_sync_time(wire_bytes, workers);
  }

  double sync_fault_penalty(FaultInjector& faults, size_t rank,
                            uint64_t iteration) override {
    return message_leg_penalty(faults, rank, iteration) +
           ps_retry_penalty(faults, rank, iteration, /*allow_give_up=*/false,
                            nullptr);
  }

  ParameterServer* central_store() override { return &ps_; }

  void abort() override { ps_.abort(); }

 private:
  ParameterServer ps_;
};

}  // namespace

std::unique_ptr<CommBackend> make_comm_backend(
    const CommBackendConfig& config) {
  switch (config.kind) {
    case BackendKind::kSharedMemory:
      return std::make_unique<SharedMemBackend>(config.topology);
    case BackendKind::kRing: {
      auto ring = std::make_unique<RingBackend>(config.workers, config.faults);
      ring->set_topology(config.topology);
      return ring;
    }
    case BackendKind::kTree:
      return std::make_unique<TreeBackend>(config.workers, config.faults);
    case BackendKind::kParameterServer:
      if (config.initial_params.empty())
        throw std::invalid_argument(
            "make_comm_backend: the ps backend needs initial parameters for "
            "its central store");
      return std::make_unique<PsBackend>(config.initial_params,
                                         config.workers);
  }
  throw std::invalid_argument("make_comm_backend: unknown backend kind");
}

}  // namespace selsync
