#include "comm/comm_backend.hpp"

#include <algorithm>
#include <stdexcept>

#include "comm/collectives.hpp"
#include "comm/compressed_chunk.hpp"
#include "comm/fault_injector.hpp"
#include "comm/parameter_server.hpp"
#include "comm/tree_allreduce.hpp"

namespace selsync {

const char* backend_kind_name(BackendKind kind) {
  return enum_name(kBackendKindNames, kind);
}

std::optional<BackendKind> backend_kind_from_name(std::string_view name) {
  return enum_from_name(kBackendKindNames, name);
}

std::string backend_kind_names() { return enum_names(kBackendKindNames); }

const char* transport_kind_name(TransportKind kind) {
  return enum_name(kTransportKindNames, kind);
}

std::optional<TransportKind> transport_kind_from_name(std::string_view name) {
  return enum_from_name(kTransportKindNames, name);
}

std::string transport_kind_names() {
  return enum_names(kTransportKindNames);
}

double message_leg_penalty(FaultInjector& faults, size_t rank, uint64_t it) {
  const MessageFaultConfig& m = faults.plan().messages;
  if (!m.any()) return 0.0;
  double penalty = 0.0;
  for (int leg = 0; leg < 2; ++leg) {
    switch (faults.draw_message_fate(rank)) {
      case MessageFate::kDrop:
        faults.record(rank, FaultKind::kMessageDrop, it,
                      m.retransmit_timeout_s);
        penalty += m.retransmit_timeout_s;
        break;
      case MessageFate::kDelay:
        faults.record(rank, FaultKind::kMessageDelay, it, m.delay_s);
        penalty += m.delay_s;
        break;
      case MessageFate::kDuplicate:
        faults.record(rank, FaultKind::kMessageDuplicate, it, 0.0);
        break;
      case MessageFate::kDeliver:
        break;
    }
  }
  return penalty;
}

double ps_retry_penalty(FaultInjector& faults, size_t rank, uint64_t it,
                        bool allow_give_up, bool* gave_up) {
  if (gave_up) *gave_up = false;
  const PsFaultConfig& cfg = faults.plan().ps;
  if (!cfg.any()) return 0.0;
  const size_t timeouts = faults.draw_ps_timeouts(rank);
  double penalty = 0.0;
  for (size_t attempt = 0; attempt < timeouts; ++attempt) {
    penalty += faults.ps_backoff_s(attempt);
    faults.record(rank, FaultKind::kPsTimeout, it,
                  static_cast<double>(attempt));
  }
  if (allow_give_up && timeouts > cfg.max_retries) {
    faults.record(rank, FaultKind::kPsGiveUp, it,
                  static_cast<double>(timeouts));
    if (gave_up) *gave_up = true;
  }
  return penalty;
}

CommBackend::CommBackend(const CompressionConfig& codec, size_t workers)
    : codec_(codec) {
  if (has_codec()) {
    codecs_.assign(workers, GradientCompressor(codec));
    // Per-(rank, slice) codec state for the sliced data plane: slices are
    // recurring payloads exactly like ring chunks, so they get ChunkCodec
    // error feedback keyed on the slice index.
    slice_codec_ = std::make_unique<ChunkCodec>(codec, workers);
  }
}

CommBackend::~CommBackend() = default;

// Base gradient path: full-vector codec, then weight, then the dense data
// plane — the exact operation order of the pre-fusion trainer, which the
// shared-memory and PS backends keep (golden-parity anchor; the PS backend
// thereby compresses its push payload before the RPC).
double CommBackend::allreduce_encoded(WorkerContext& ctx,
                                      std::vector<float>& grad,
                                      const CommGroup& group, double& clock,
                                      double delta, float weight) {
  double ratio = 1.0;
  if (has_codec()) {
    GradientCompressor& codec = rank_codec(ctx.rank);
    codec.compress(grad, delta);
    ratio = codec.last_wire_ratio();
  }
  for (auto& g : grad) g *= weight;
  allreduce(ctx, grad, group, clock);
  return ratio;
}

double CommBackend::allreduce_sliced(WorkerContext& ctx,
                                     std::vector<float>& data,
                                     const SliceSchedule& sched,
                                     const CommGroup& group, double& clock,
                                     double delta, float weight,
                                     bool encoded) {
  if (sched.total_params() != data.size())
    throw std::invalid_argument(
        "CommBackend::allreduce_sliced: schedule/payload length mismatch");
  if (sched.single_slice()) {
    // Degenerate schedule = the pre-slicing step-end barrier, kept on the
    // exact legacy code paths so golden records cannot drift.
    if (encoded)
      return allreduce_encoded(ctx, data, group, clock, delta, weight);
    for (auto& v : data) v *= weight;
    allreduce(ctx, data, group, clock);
    return 1.0;
  }
  // Multi-slice rounds weight before encoding: slices hold partial sums of
  // weighted contributions, like ring chunks (Top-k selection is
  // scale-invariant, so the codec agrees with the legacy order).
  for (auto& v : data) v *= weight;
  const bool coded = encoded && has_codec();
  if (coded) begin_sliced_round(ctx.rank, delta);
  const std::vector<SyncSlice>& slices = sched.slices();
  for (size_t i = 0; i < slices.size(); ++i) {
    const SyncSlice& s = slices[i];
    slice_round(ctx, std::span<float>(data.data() + s.offset, s.length),
                s.offset, i, group, clock, coded);
  }
  return coded ? sliced_round_ratio(ctx.rank) : 1.0;
}

void CommBackend::begin_sliced_round(size_t rank, double delta) {
  slice_codec_->begin_round(rank, delta);
}

void CommBackend::slice_round(WorkerContext& ctx, std::span<float> slice,
                              size_t /*offset*/, size_t index,
                              const CommGroup& group, double& clock,
                              bool coded) {
  if (coded) {
    const size_t dense = slice.size() * sizeof(float);
    const size_t wire = slice_codec_->transform(ctx.rank, index, slice);
    slice_codec_->charge(ctx.rank, wire, dense);
  }
  // One dense collective round per slice; the shared-memory collectives
  // work at any span length.
  std::vector<float> tmp(slice.begin(), slice.end());
  allreduce(ctx, tmp, group, clock);
  std::copy(tmp.begin(), tmp.end(), slice.begin());
}

double CommBackend::sliced_round_ratio(size_t rank) {
  return slice_codec_->round_ratio(rank);
}

// Control-plane defaults: every backend keeps the tiny latency-bound ops on
// the shared-memory bus (see comm_backend.hpp header comment).
std::vector<uint8_t> CommBackend::allgather_flags(WorkerContext& ctx,
                                                  uint8_t flag,
                                                  const CommGroup& group) {
  return ctx.collectives->allgather_byte(ctx.rank, flag, group);
}

void CommBackend::broadcast(WorkerContext& ctx, size_t root,
                            std::vector<float>& data, const CommGroup& group) {
  ctx.collectives->broadcast(ctx.rank, root, data, group);
}

double CommBackend::allreduce_max(WorkerContext& ctx, double value,
                                  const CommGroup& group) {
  return ctx.collectives->allreduce_max(ctx.rank, value, group);
}

void CommBackend::barrier(WorkerContext& ctx, const CommGroup& group) {
  ctx.collectives->barrier(group);
}

SyncCost CommBackend::sync_cost(const CostModel& cost, size_t dense_bytes,
                                size_t workers, double wire_ratio) const {
  SyncCost c;
  c.dense_bytes = dense_bytes;
  c.wire_bytes =
      wire_ratio == 1.0
          ? dense_bytes
          : static_cast<size_t>(static_cast<double>(dense_bytes) * wire_ratio);
  c.transfer_s = transfer_time(cost, c.wire_bytes, workers);
  const size_t shards = ingest_shards();
  if (shards > 0) {
    c.ps_shards = shards;
    c.max_shard_wire_bytes = (c.wire_bytes + shards - 1) / shards;
    // The PS schedule already prices the busiest shard's ingest as the
    // round's critical path (CostModel::ps_shard_sync_time).
    c.max_ingest_s = c.transfer_s;
  }
  if (c.wire_bytes < c.dense_bytes) {
    // Codec compute when the payload was shrunk: compress + decompress over
    // the full dense gradient at ~4 GB/s effective (GraVAC-range overhead),
    // split evenly across the two directions.
    const double codec = static_cast<double>(dense_bytes) / 4e9;
    c.encode_s = 0.5 * codec;
    c.decode_s = codec - c.encode_s;
  }
  return c;
}

void CommBackend::charge_sync_faults(SyncCost&, FaultInjector&, size_t,
                                     uint64_t) {}

// Base lifecycle capture: the full-vector and slice codec state every
// backend owns. The chunked transports and the PS backend extend this with
// their chunk residuals / central store (see their overrides below).
BackendHandoff CommBackend::extract_handoff() const {
  BackendHandoff out;
  out.codec_kind = codec_.kind;
  out.codec_residuals.reserve(codecs_.size());
  out.codec_ratios.reserve(codecs_.size());
  for (const GradientCompressor& codec : codecs_) {
    out.codec_residuals.push_back(codec.residual());
    out.codec_ratios.push_back(codec.last_wire_ratio());
  }
  if (slice_codec_) out.slice_residuals = slice_codec_->export_residuals();
  return out;
}

void CommBackend::adopt_handoff(const BackendHandoff& state) {
  // Residuals only transfer between identical codecs: a kTopK residual is
  // meaningless to a kQuant8 successor (different dropped-mass semantics),
  // so a codec change behaves exactly like a cold start.
  if (!has_codec() || state.codec_kind != codec_.kind) return;
  for (size_t r = 0; r < codecs_.size() && r < state.codec_residuals.size();
       ++r) {
    const double ratio =
        r < state.codec_ratios.size() ? state.codec_ratios[r] : 1.0;
    codecs_[r].adopt_residual(state.codec_residuals[r], ratio);
  }
  if (slice_codec_) slice_codec_->adopt_residuals(state.slice_residuals);
}

namespace {

/// Barrier-synchronous shared-buffer collectives — the seed's default
/// transport. Costs and fault penalties stand in for whichever topology the
/// job declares (PS incast or ring allreduce), exactly as the seed trainer
/// charged them. Keeps the base full-vector codec path: this backend is the
/// golden-parity anchor for compressed runs.
class SharedMemBackend final : public CommBackend {
 public:
  SharedMemBackend(Topology topology, const CompressionConfig& codec,
                   size_t workers)
      : CommBackend(codec, workers), topology_(topology) {}

  BackendKind kind() const override { return BackendKind::kSharedMemory; }

  void allreduce(WorkerContext& ctx, std::vector<float>& data,
                 const CommGroup& group, double&) override {
    ctx.collectives->allreduce_sum(ctx.rank, data, group);
  }

  void charge_sync_faults(SyncCost& cost, FaultInjector& faults, size_t rank,
                          uint64_t iteration) override {
    double penalty = message_leg_penalty(faults, rank, iteration);
    if (topology_ == Topology::kParameterServer)
      penalty += ps_retry_penalty(faults, rank, iteration,
                                  /*allow_give_up=*/false, nullptr);
    cost.fault_penalty_s += penalty;
  }

 protected:
  double transfer_time(const CostModel& cost, size_t wire_bytes,
                       size_t workers) const override {
    return topology_ == Topology::kParameterServer
               ? cost.ps_sync_time(wire_bytes, workers)
               : cost.ring_allreduce_time(wire_bytes, workers);
  }

 private:
  Topology topology_;
};

/// Channel-based bandwidth-optimal ring. Faults are injected per chunk
/// inside RingAllreduce and drained from the injector's pending-delay
/// account onto the caller's clock here. With a codec, every chunk-hop
/// moves encoded (see RingAllreduce::run): the ChunkCodec keeps per-
/// (rank, chunk) error feedback and measures the wire bytes that actually
/// crossed the links.
class RingBackend final : public CommBackend {
 public:
  RingBackend(size_t workers, FaultInjector* faults,
              const CompressionConfig& codec)
      : CommBackend(codec, workers),
        workers_(workers),
        faults_(faults),
        ring_(workers, faults) {
    if (codec.kind != CompressionKind::kNone)
      chunk_codec_ = std::make_unique<ChunkCodec>(codec, workers);
  }

  BackendKind kind() const override { return BackendKind::kRing; }

  void allreduce(WorkerContext& ctx, std::vector<float>& data,
                 const CommGroup&, double& clock) override {
    ring_.run(ctx.rank, data);
    if (faults_) clock += faults_->take_pending_delay(ctx.rank);
  }

  double allreduce_encoded(WorkerContext& ctx, std::vector<float>& grad,
                           const CommGroup& group, double& clock, double delta,
                           float weight) override {
    if (!chunk_codec_)
      return CommBackend::allreduce_encoded(ctx, grad, group, clock, delta,
                                            weight);
    // Chunks hold partial sums of *weighted* contributions, so the weight
    // goes on before anything flies (the full-vector path weights after
    // encoding; Top-k selection is scale-invariant, so the codecs agree).
    for (auto& g : grad) g *= weight;
    chunk_codec_->begin_round(ctx.rank, delta);
    ring_.run(ctx.rank, grad, chunk_codec_.get());
    if (faults_) clock += faults_->take_pending_delay(ctx.rank);
    return chunk_codec_->round_ratio(ctx.rank);
  }

  void charge_sync_faults(SyncCost& cost, FaultInjector& faults, size_t rank,
                          uint64_t iteration) override {
    // Seed parity: the ring injects message faults per chunk inside run(),
    // but the seed trainer still charged the PS-RPC retry penalty whenever
    // the *priced* topology was the parameter server — and those draws come
    // from the same per-rank RNG stream as the chunk fates, so dropping
    // them would shift every subsequent draw.
    if (topology_ == Topology::kParameterServer)
      cost.fault_penalty_s += ps_retry_penalty(faults, rank, iteration,
                                               /*allow_give_up=*/false,
                                               nullptr);
  }

  void set_topology(Topology topology) { topology_ = topology; }

  void abort() override { ring_.close_all(); }

  BackendHandoff extract_handoff() const override {
    BackendHandoff out = CommBackend::extract_handoff();
    if (chunk_codec_) out.chunk_residuals = chunk_codec_->export_residuals();
    return out;
  }

  void adopt_handoff(const BackendHandoff& state) override {
    CommBackend::adopt_handoff(state);
    if (chunk_codec_ && state.codec_kind == codec().kind)
      chunk_codec_->adopt_residuals(state.chunk_residuals);
  }

 protected:
  double transfer_time(const CostModel& cost, size_t wire_bytes,
                       size_t workers) const override {
    // Parity with the seed trainer: the ring *transport* kept charging
    // whatever the job's declared topology priced (the knobs were
    // orthogonal there). The job maps ring -> ring pricing via
    // TrainJob::topology, which the factory threads through here.
    return topology_ == Topology::kParameterServer
               ? cost.ps_sync_time(wire_bytes, workers)
               : cost.ring_allreduce_time(wire_bytes, workers);
  }

  /// Sliced rounds keep the per-chunk-hop codec: one coded ring pass per
  /// slice, all sharing one begin_round so wire accounting and the adaptive
  /// Top-k resolution cover the whole round.
  void begin_sliced_round(size_t rank, double delta) override {
    chunk_codec_->begin_round(rank, delta);
  }

  void slice_round(WorkerContext& ctx, std::span<float> slice,
                   size_t /*offset*/, size_t index, const CommGroup&,
                   double& clock, bool coded) override {
    // The ring keys chunk residuals on chunk index [0, workers); rebase per
    // slice so every slice keeps its own error-feedback state.
    if (coded) chunk_codec_->set_slot_base(ctx.rank, index * workers_);
    ring_.run(ctx.rank, slice, coded ? chunk_codec_.get() : nullptr);
    if (faults_) clock += faults_->take_pending_delay(ctx.rank);
  }

  double sliced_round_ratio(size_t rank) override {
    return chunk_codec_->round_ratio(rank);
  }

 private:
  size_t workers_;
  FaultInjector* faults_;
  RingAllreduce ring_;
  std::unique_ptr<ChunkCodec> chunk_codec_;
  Topology topology_ = Topology::kParameterServer;
};

/// log(N) reduction tree over channels; bit-identical to the shared-memory
/// backend by construction when dense (see tree_allreduce.hpp), priced as
/// the classic tree schedule. With a codec, each rank's contribution moves
/// encoded up the tree and the root's reduced vector moves encoded down it.
class TreeBackend final : public CommBackend {
 public:
  TreeBackend(size_t workers, FaultInjector* faults,
              const CompressionConfig& codec)
      : CommBackend(codec, workers),
        faults_(faults),
        tree_(workers, faults) {
    if (codec.kind != CompressionKind::kNone)
      chunk_codec_ = std::make_unique<ChunkCodec>(codec, workers);
  }

  BackendKind kind() const override { return BackendKind::kTree; }

  void allreduce(WorkerContext& ctx, std::vector<float>& data,
                 const CommGroup&, double& clock) override {
    tree_.run(ctx.rank, data);
    if (faults_) clock += faults_->take_pending_delay(ctx.rank);
  }

  double allreduce_encoded(WorkerContext& ctx, std::vector<float>& grad,
                           const CommGroup& group, double& clock, double delta,
                           float weight) override {
    if (!chunk_codec_)
      return CommBackend::allreduce_encoded(ctx, grad, group, clock, delta,
                                            weight);
    for (auto& g : grad) g *= weight;
    chunk_codec_->begin_round(ctx.rank, delta);
    tree_.run(ctx.rank, grad, chunk_codec_.get());
    if (faults_) clock += faults_->take_pending_delay(ctx.rank);
    return chunk_codec_->round_ratio(ctx.rank);
  }

  void abort() override { tree_.close_all(); }

  BackendHandoff extract_handoff() const override {
    BackendHandoff out = CommBackend::extract_handoff();
    if (chunk_codec_) out.chunk_residuals = chunk_codec_->export_residuals();
    return out;
  }

  void adopt_handoff(const BackendHandoff& state) override {
    CommBackend::adopt_handoff(state);
    if (chunk_codec_ && state.codec_kind == codec().kind)
      chunk_codec_->adopt_residuals(state.chunk_residuals);
  }

 protected:
  double transfer_time(const CostModel& cost, size_t wire_bytes,
                       size_t workers) const override {
    return cost.tree_allreduce_time(wire_bytes, workers);
  }

  void begin_sliced_round(size_t rank, double delta) override {
    chunk_codec_->begin_round(rank, delta);
  }

  void slice_round(WorkerContext& ctx, std::span<float> slice,
                   size_t /*offset*/, size_t index, const CommGroup&,
                   double& clock, bool coded) override {
    // The tree uses two codec slots per pass (own contribution + reduced
    // vector); rebase per slice to keep slice residuals separate.
    if (coded) chunk_codec_->set_slot_base(ctx.rank, index * 2);
    tree_.run(ctx.rank, slice, coded ? chunk_codec_.get() : nullptr);
    if (faults_) clock += faults_->take_pending_delay(ctx.rank);
  }

  double sliced_round_ratio(size_t rank) override {
    return chunk_codec_->round_ratio(rank);
  }

 private:
  FaultInjector* faults_;
  TreeAllreduce tree_;
  std::unique_ptr<ChunkCodec> chunk_codec_;
};

/// Synchronous rounds routed through the sharded parameter-server tier
/// (deterministic rank-slotted PsRound aggregation per shard); the same
/// tier is the central store SSP's push/pull path runs against. Keeps the
/// base full-vector codec path: the push payload is compressed before the
/// RPC, so a compressed PS round stays bit-identical to the shared-memory
/// backend's. Each worker begins + contributes on every shard before
/// awaiting any of them, so the K ingest links overlap; per element the
/// fold is the same ascending-rank summation at any K, which keeps K > 1
/// bitwise equal to K = 1.
class PsBackend final : public CommBackend {
 public:
  PsBackend(std::vector<float> initial, size_t workers, size_t shards,
            const CompressionConfig& codec)
      : CommBackend(codec, workers),
        ps_(std::move(initial), workers, shards) {}

  BackendKind kind() const override { return BackendKind::kParameterServer; }

  void allreduce(WorkerContext& ctx, std::vector<float>& data,
                 const CommGroup& group, double&) override {
    if (data.size() != ps_.dim())
      throw std::invalid_argument("PsBackend::allreduce: dim mismatch");
    PsRoundConfig round;
    round.participants = group.size;
    const size_t shards = ps_.shards();
    std::vector<uint64_t> tickets(shards);
    for (size_t k = 0; k < shards; ++k)
      tickets[k] = ps_.shard(k).round().begin(round);
    for (size_t k = 0; k < shards; ++k) {
      const auto range = ps_.shard_range(k);
      ps_.shard(k).round().contribute(
          tickets[k], ctx.rank,
          std::span<const float>(data.data() + range.offset, range.length));
    }
    for (size_t k = 0; k < shards; ++k) {
      const auto range = ps_.shard_range(k);
      const std::vector<float> fold = ps_.shard(k).round().await(tickets[k]);
      std::copy(fold.begin(), fold.end(), data.begin() + range.offset);
    }
  }

  void charge_sync_faults(SyncCost& cost, FaultInjector& faults, size_t rank,
                          uint64_t iteration) override {
    double penalty = message_leg_penalty(faults, rank, iteration);
    penalty += ps_retry_penalty(faults, rank, iteration,
                                /*allow_give_up=*/false, nullptr);
    cost.fault_penalty_s += penalty;
  }

  ShardedParameterServer* central_store() override { return &ps_; }

  void abort() override { ps_.abort(); }

  BackendHandoff extract_handoff() const override {
    BackendHandoff out = CommBackend::extract_handoff();
    out.has_store = true;
    out.store_params = ps_.pull();
    out.ssp_clocks = ps_.ssp_clocks();
    return out;
  }

  void adopt_handoff(const BackendHandoff& state) override {
    CommBackend::adopt_handoff(state);
    // A PS predecessor hands its store forward verbatim (the successor was
    // constructed from the phase-0 model seed, which is stale by now); the
    // staleness clocks come along so an SSP -> SSP switch keeps its bound.
    // A sync -> SSP switch re-seeds the clocks afterwards (the trainer
    // calls seed_worker_clocks with the boundary iteration).
    if (state.has_store && state.store_params.size() == ps_.dim()) {
      ps_.store(state.store_params);
      if (state.ssp_clocks.worker_iteration.size() == ps_.workers() &&
          state.ssp_clocks.worker_done.size() == ps_.workers())
        ps_.restore_ssp_clocks(state.ssp_clocks);
    }
  }

 protected:
  double transfer_time(const CostModel& cost, size_t wire_bytes,
                       size_t workers) const override {
    return cost.ps_shard_sync_time(wire_bytes, workers, ps_.shards());
  }

  size_t ingest_shards() const override { return ps_.shards(); }

  /// One slice = one sub-range PsRound on every shard the slice intersects
  /// (PsRoundConfig::values), so the store never re-shards per schedule.
  /// Same non-blocking shape as the full-vector path: begin + contribute on
  /// every intersection before awaiting any, overlapping the shard ingest
  /// links. Each worker awaits a slice's shard rounds before starting the
  /// next slice, which preserves PsRound's one-unawaited-round invariant on
  /// shards that several slices touch.
  void slice_round(WorkerContext& ctx, std::span<float> slice, size_t offset,
                   size_t index, const CommGroup& group, double&,
                   bool coded) override {
    if (coded) {
      // Compress the slice before its push RPCs, as the full-vector path
      // compresses before the push.
      const size_t dense = slice.size() * sizeof(float);
      const size_t wire = slice_codec()->transform(ctx.rank, index, slice);
      slice_codec()->charge(ctx.rank, wire, dense);
    }
    struct Intersection {
      size_t shard;
      size_t slice_pos;  // where the intersection starts inside `slice`
      size_t length;
      uint64_t ticket;
    };
    std::vector<Intersection> parts;
    const size_t lo = offset, hi = offset + slice.size();
    for (size_t k = 0; k < ps_.shards(); ++k) {
      const auto range = ps_.shard_range(k);
      const size_t begin = std::max(lo, range.offset);
      const size_t end = std::min(hi, range.offset + range.length);
      if (begin >= end) continue;
      parts.push_back(Intersection{k, begin - lo, end - begin, 0});
    }
    for (Intersection& p : parts) {
      PsRoundConfig round;
      round.participants = group.size;
      round.values = p.length;
      p.ticket = ps_.shard(p.shard).round().begin(round);
    }
    for (const Intersection& p : parts)
      ps_.shard(p.shard).round().contribute(
          p.ticket, ctx.rank,
          std::span<const float>(slice.data() + p.slice_pos, p.length));
    for (const Intersection& p : parts) {
      const std::vector<float> fold =
          ps_.shard(p.shard).round().await(p.ticket);
      std::copy(fold.begin(), fold.end(), slice.begin() + p.slice_pos);
    }
  }

 private:
  ShardedParameterServer ps_;
};

}  // namespace

std::unique_ptr<CommBackend> make_comm_backend(
    const CommBackendConfig& config) {
  switch (config.kind) {
    case BackendKind::kSharedMemory:
      return std::make_unique<SharedMemBackend>(
          config.topology, config.compression, config.workers);
    case BackendKind::kRing: {
      auto ring = std::make_unique<RingBackend>(config.workers, config.faults,
                                                config.compression);
      ring->set_topology(config.topology);
      return ring;
    }
    case BackendKind::kTree:
      return std::make_unique<TreeBackend>(config.workers, config.faults,
                                           config.compression);
    case BackendKind::kParameterServer:
      if (config.initial_params.empty())
        throw std::invalid_argument(
            "make_comm_backend: the ps backend needs initial parameters for "
            "its central store");
      return std::make_unique<PsBackend>(config.initial_params, config.workers,
                                         config.ps_shards,
                                         config.compression);
  }
  throw std::invalid_argument("make_comm_backend: unknown backend kind");
}

}  // namespace selsync
