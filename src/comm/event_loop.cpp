#include "comm/event_loop.hpp"

#include <stdexcept>
#include <string>
#include <utility>

// AddressSanitizer needs to be told about every stack switch, or its
// fake-stack machinery misattributes frames and reports false positives.
#if defined(__SANITIZE_ADDRESS__)
#define SELSYNC_DES_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SELSYNC_DES_ASAN 1
#endif
#endif

#if defined(SELSYNC_DES_ASAN)
#include <sanitizer/common_interface_defs.h>
#endif

namespace selsync {

namespace {

#if defined(SELSYNC_DES_ASAN)
void asan_start_switch(void** fake_stack_save, const void* bottom,
                       size_t size) {
  __sanitizer_start_switch_fiber(fake_stack_save, bottom, size);
}
void asan_finish_switch(void* fake_stack, const void** from_bottom,
                        size_t* from_size) {
  __sanitizer_finish_switch_fiber(fake_stack, from_bottom, from_size);
}
#else
void asan_start_switch(void**, const void*, size_t) {}
void asan_finish_switch(void*, const void**, size_t*) {}
#endif

/// The loop driving this thread, if any. thread_local (not a global) so a
/// DES run and a thread-engine run can coexist in one process — each real
/// thread sees only its own engine.
thread_local EventLoop* g_current_loop = nullptr;

}  // namespace

EventLoop* EventLoop::current() { return g_current_loop; }

EventLoop::EventLoop(size_t expected_tasks) {
#if defined(__SANITIZE_THREAD__)
  // TSan instruments pthread synchronization, not ucontext fiber switches;
  // running fibers under it corrupts its shadow state. The thread engine is
  // the sanitizer-facing twin (ci.sh pins the TSan legs to it).
  throw std::runtime_error(
      "EventLoop: the DES engine does not run under ThreadSanitizer; "
      "use EngineKind::kThreads for sanitizer runs");
#endif
  tasks_.reserve(expected_tasks);
}

EventLoop::~EventLoop() = default;

void EventLoop::spawn(size_t rank, std::function<void()> body) {
  if (running_ != nullptr)
    throw std::logic_error("EventLoop::spawn: loop already running");
  auto task = std::make_unique<Task>();
  task->rank = rank;
  task->body = std::move(body);
  task->stack = std::make_unique<char[]>(kStackBytes);
  tasks_.push_back(std::move(task));
}

void EventLoop::run() {
  if (g_current_loop != nullptr)
    throw std::logic_error("EventLoop::run: a loop is already driving "
                           "this thread");
  // Seed the ready heap: everyone starts at virtual time zero, so the
  // (vtime, rank, seq) order makes rank 0 the first to run.
  live_ = tasks_.size();
  for (size_t i = 0; i < tasks_.size(); ++i)
    make_ready(*tasks_[i], i, /*vtime=*/tasks_[i]->vtime);

  g_current_loop = this;
  try {
    while (!ready_.empty()) {
      const DesEvent event = ready_.pop();
      Task& task = *tasks_[event.task];
      if (task.state != TaskState::kReady) continue;
      running_ = &task;
      running_index_ = event.task;
      task.state = TaskState::kRunning;
      ++switches_;
      enter_fiber(task);
      running_ = nullptr;
      if (task.state == TaskState::kDone) --live_;
    }
    if (live_ != 0) stalled();
  } catch (...) {
    g_current_loop = nullptr;
    running_ = nullptr;
    throw;
  }
  g_current_loop = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

void EventLoop::trampoline() {
  EventLoop* loop = g_current_loop;
  Task& task = *loop->running_;
  // First entry into this fiber: complete the switch the scheduler started,
  // learning the host thread's stack bounds for the switches back.
  asan_finish_switch(nullptr, &loop->host_stack_bottom_,
                     &loop->host_stack_size_);
  try {
    task.body();
  } catch (...) {
    // The cluster runner's wrapper should have caught everything; capture
    // strays here because an exception escaping a ucontext entry point is
    // undefined behaviour.
    if (!loop->first_error_) loop->first_error_ = std::current_exception();
  }
  task.state = TaskState::kDone;
  loop->leave_fiber(task, /*final_exit=*/true);
  // leave_fiber never returns for a finished task; the scheduler drops it.
}

void EventLoop::enter_fiber(Task& task) {
  // Lazily prepare the context on first dispatch.
  if (!task.prepared) {
    if (getcontext(&task.context) != 0)
      throw std::runtime_error("EventLoop: getcontext failed");
    task.context.uc_stack.ss_sp = task.stack.get();
    task.context.uc_stack.ss_size = kStackBytes;
    task.context.uc_link = &scheduler_context_;
    makecontext(&task.context, &EventLoop::trampoline, 0);
    task.prepared = true;
  }
  asan_start_switch(&scheduler_fake_stack_, task.stack.get(), kStackBytes);
  if (swapcontext(&scheduler_context_, &task.context) != 0)
    throw std::runtime_error("EventLoop: swapcontext into fiber failed");
  asan_finish_switch(scheduler_fake_stack_, nullptr, nullptr);
}

void EventLoop::leave_fiber(Task& task, bool final_exit) {
  // A finished fiber hands its fake stack back (first arg nullptr); a
  // parked/yielding one saves it for resumption.
  asan_start_switch(final_exit ? nullptr : &task.asan_fake_stack,
                    host_stack_bottom_, host_stack_size_);
  if (swapcontext(&task.context, &scheduler_context_) != 0)
    throw std::runtime_error("EventLoop: swapcontext to scheduler failed");
  // Resumed (parked/yielded fibers only).
  asan_finish_switch(task.asan_fake_stack, nullptr, nullptr);
}

void EventLoop::make_ready(Task& task, size_t index, double vtime) {
  if (vtime > task.vtime) task.vtime = vtime;
  task.state = TaskState::kReady;
  ready_.push({task.vtime, task.rank, next_seq_++, index});
  ++events_;
}

void EventLoop::park(DesWaitQueue& queue) {
  Task& task = *running_;
  task.state = TaskState::kParked;
  queue.parked.push_back(running_index_);
  leave_fiber(task, /*final_exit=*/false);
}

void EventLoop::wake_all(DesWaitQueue& queue) {
  const double now = running_ != nullptr ? running_->vtime : 0.0;
  for (size_t index : queue.parked) {
    Task& task = *tasks_[index];
    if (task.state == TaskState::kParked) make_ready(task, index, now);
  }
  queue.parked.clear();
}

void EventLoop::wake_one(DesWaitQueue& queue) {
  const double now = running_ != nullptr ? running_->vtime : 0.0;
  while (!queue.parked.empty()) {
    const size_t index = queue.parked.front();
    queue.parked.erase(queue.parked.begin());
    Task& task = *tasks_[index];
    if (task.state == TaskState::kParked) {
      make_ready(task, index, now);
      return;
    }
  }
}

void EventLoop::advance_clock(double vtime) {
  if (running_ != nullptr && vtime > running_->vtime)
    running_->vtime = vtime;
}

void EventLoop::yield_current(double vtime) {
  if (running_ == nullptr) return;
  advance_clock(vtime);
  Task& task = *running_;
  make_ready(task, running_index_, task.vtime);
  leave_fiber(task, /*final_exit=*/false);
}

size_t EventLoop::current_rank() const {
  if (running_ == nullptr)
    throw std::logic_error("EventLoop::current_rank: no running fiber");
  return running_->rank;
}

double EventLoop::current_vtime() const {
  if (running_ == nullptr)
    throw std::logic_error("EventLoop::current_vtime: no running fiber");
  return running_->vtime;
}

void EventLoop::stalled() {
  std::string stuck;
  for (const auto& task : tasks_) {
    if (task->state == TaskState::kParked) {
      if (!stuck.empty()) stuck += ", ";
      stuck += std::to_string(task->rank);
    }
  }
  throw std::runtime_error(
      "EventLoop: stalled — no runnable fiber but ranks {" + stuck +
      "} are parked (lost wakeup or deadlocked protocol)");
}

}  // namespace selsync
