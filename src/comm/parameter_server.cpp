#include "comm/parameter_server.hpp"

#include <algorithm>
#include <stdexcept>

#include "comm/barrier.hpp"

namespace selsync {

const char* aggregation_mode_name(AggregationMode mode) {
  return enum_name(kAggregationModeNames, mode);
}

std::optional<AggregationMode> aggregation_mode_from_name(
    std::string_view name) {
  return enum_from_name(kAggregationModeCliNames, name);
}

std::string aggregation_mode_names() {
  return enum_names(kAggregationModeCliNames);
}

ParameterServer::ParameterServer(std::vector<float> initial, size_t workers)
    : global_(std::move(initial)),
      workers_(workers),
      round_(global_.empty() ? 1 : global_.size(),
             workers == 0 ? 1 : workers),
      worker_iteration_(workers, 0),
      worker_done_(workers, false) {
  if (workers == 0) throw std::invalid_argument("ParameterServer: 0 workers");
  if (global_.empty())
    throw std::invalid_argument("ParameterServer: empty model");
}

std::vector<float> ParameterServer::pull() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return global_;
}

void ParameterServer::store(std::span<const float> params) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (params.size() != global_.size())
    throw std::invalid_argument("store: dim mismatch");
  std::copy(params.begin(), params.end(), global_.begin());
}

void ParameterServer::apply_gradient_async(std::span<const float> grad,
                                           double lr) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (grad.size() != global_.size())
    throw std::invalid_argument("apply_gradient_async: dim mismatch");
  const float flr = static_cast<float>(lr);
  for (size_t i = 0; i < grad.size(); ++i) global_[i] -= flr * grad[i];
  ++async_updates_;
}

void ParameterServer::apply_delta_async(std::span<const float> delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (delta.size() != global_.size())
    throw std::invalid_argument("apply_delta_async: dim mismatch");
  for (size_t i = 0; i < delta.size(); ++i) global_[i] += delta[i];
  ++async_updates_;
}

uint64_t ParameterServer::min_active_iteration_locked() const {
  uint64_t min_iter = std::numeric_limits<uint64_t>::max();
  bool any = false;
  for (size_t w = 0; w < workers_; ++w)
    if (!worker_done_[w]) {
      min_iter = std::min(min_iter, worker_iteration_[w]);
      any = true;
    }
  return any ? min_iter : std::numeric_limits<uint64_t>::max();
}

void ParameterServer::enforce_staleness(size_t rank, uint64_t iteration,
                                        uint64_t staleness) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (aborted_) throw BarrierAborted();
  worker_iteration_[rank] = iteration;
  cv_.notify_all();
  cv_.wait(lock, [&] {
    if (aborted_) return true;
    const uint64_t floor = min_active_iteration_locked();
    return floor == std::numeric_limits<uint64_t>::max() ||
           iteration <= floor + staleness;
  });
  if (aborted_) throw BarrierAborted();
}

void ParameterServer::finish(size_t rank) {
  std::lock_guard<std::mutex> lock(mutex_);
  worker_done_[rank] = true;
  cv_.notify_all();
}

void ParameterServer::abort() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
  }
  cv_.notify_all();
  round_.abort();
}

bool ParameterServer::aborted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return aborted_;
}

uint64_t ParameterServer::async_updates() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return async_updates_;
}

SspClockState ParameterServer::ssp_clocks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {worker_iteration_, worker_done_, async_updates_};
}

void ParameterServer::restore_ssp_clocks(const SspClockState& state) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state.worker_iteration.size() != workers_ ||
      state.worker_done.size() != workers_)
    throw std::invalid_argument("restore_ssp_clocks: worker count mismatch");
  worker_iteration_ = state.worker_iteration;
  worker_done_ = state.worker_done;
  async_updates_ = state.async_updates;
  cv_.notify_all();
}

void ParameterServer::seed_worker_clocks(uint64_t iteration) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fill(worker_iteration_.begin(), worker_iteration_.end(), iteration);
  std::fill(worker_done_.begin(), worker_done_.end(), false);
  cv_.notify_all();
}

// ---------------------------------------------------------------------------
// ShardedParameterServer
// ---------------------------------------------------------------------------

ShardedParameterServer::ShardedParameterServer(std::vector<float> initial,
                                               size_t workers, size_t shards)
    : dim_(initial.size()), workers_(workers) {
  if (shards == 0)
    throw std::invalid_argument("ShardedParameterServer: 0 shards");
  if (initial.empty())
    throw std::invalid_argument("ShardedParameterServer: empty model");
  if (shards > initial.size())
    throw std::invalid_argument(
        "ShardedParameterServer: more shards than parameters");
  const size_t base = dim_ / shards;
  const size_t extra = dim_ % shards;
  size_t offset = 0;
  for (size_t k = 0; k < shards; ++k) {
    const size_t length = base + (k < extra ? 1 : 0);
    ranges_.push_back({offset, length});
    shards_.push_back(std::make_unique<ParameterServer>(
        std::vector<float>(initial.data() + offset,
                           initial.data() + offset + length),
        workers));
    offset += length;
  }
}

std::vector<float> ShardedParameterServer::pull() const {
  std::vector<float> out;
  out.reserve(dim_);
  for (const auto& shard : shards_) {
    const std::vector<float> part = shard->pull();
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

void ShardedParameterServer::store(std::span<const float> params) {
  if (params.size() != dim_)
    throw std::invalid_argument("ShardedParameterServer::store: dim mismatch");
  for (size_t k = 0; k < shards_.size(); ++k)
    shards_[k]->store(params.subspan(ranges_[k].offset, ranges_[k].length));
}

void ShardedParameterServer::apply_gradient_async(std::span<const float> grad,
                                                  double lr) {
  if (grad.size() != dim_)
    throw std::invalid_argument(
        "ShardedParameterServer::apply_gradient_async: dim mismatch");
  for (size_t k = 0; k < shards_.size(); ++k)
    shards_[k]->apply_gradient_async(
        grad.subspan(ranges_[k].offset, ranges_[k].length), lr);
}

void ShardedParameterServer::apply_delta_async(std::span<const float> delta) {
  if (delta.size() != dim_)
    throw std::invalid_argument(
        "ShardedParameterServer::apply_delta_async: dim mismatch");
  for (size_t k = 0; k < shards_.size(); ++k)
    shards_[k]->apply_delta_async(
        delta.subspan(ranges_[k].offset, ranges_[k].length));
}

// The staleness gate is a property of the run, not of any parameter range;
// it lives on shard 0 so every worker blocks on one global bound.
void ShardedParameterServer::enforce_staleness(size_t rank, uint64_t iteration,
                                               uint64_t staleness) {
  shards_.front()->enforce_staleness(rank, iteration, staleness);
}

void ShardedParameterServer::finish(size_t rank) {
  shards_.front()->finish(rank);
}

void ShardedParameterServer::abort() {
  // Every shard: a crashed worker must release waiters parked on any of
  // the K round/staleness waits, not just the shard it happened to reach.
  for (auto& shard : shards_) shard->abort();
}

bool ShardedParameterServer::aborted() const {
  return shards_.front()->aborted();
}

uint64_t ShardedParameterServer::async_updates() const {
  // Every facade push touches shard 0 exactly once.
  return shards_.front()->async_updates();
}

}  // namespace selsync
