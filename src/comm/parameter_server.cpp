#include "comm/parameter_server.hpp"

#include <algorithm>
#include <stdexcept>

#include "comm/barrier.hpp"

namespace selsync {

const char* aggregation_mode_name(AggregationMode mode) {
  return enum_name(kAggregationModeNames, mode);
}

std::optional<AggregationMode> aggregation_mode_from_name(
    std::string_view name) {
  return enum_from_name(kAggregationModeCliNames, name);
}

std::string aggregation_mode_names() {
  return enum_names(kAggregationModeCliNames);
}

ParameterServer::ParameterServer(std::vector<float> initial, size_t workers)
    : global_(std::move(initial)),
      workers_(workers),
      worker_iteration_(workers, 0),
      worker_done_(workers, false) {
  if (workers == 0) throw std::invalid_argument("ParameterServer: 0 workers");
  if (global_.empty())
    throw std::invalid_argument("ParameterServer: empty model");
}

std::vector<float> ParameterServer::pull() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return global_;
}

std::vector<float> ParameterServer::push_and_average(
    std::span<const float> data, AggregationMode mode, size_t participants) {
  if (participants == 0 || participants > workers_)
    throw std::invalid_argument("push_and_average: bad participant count");
  std::unique_lock<std::mutex> lock(mutex_);
  if (aborted_) throw BarrierAborted();
  if (data.size() != global_.size())
    throw std::invalid_argument("push_and_average: dim mismatch");

  // Join (or open) the current round.
  if (arrived_ == 0) {
    accum_.assign(global_.size(), 0.f);
    expected_ = participants;
  } else if (expected_ != participants) {
    throw std::logic_error("push_and_average: inconsistent participants");
  }
  for (size_t i = 0; i < data.size(); ++i) accum_[i] += data[i];
  const uint64_t my_round = round_;

  if (++arrived_ == expected_) {
    const float inv = 1.f / static_cast<float>(expected_);
    for (auto& v : accum_) v *= inv;
    round_result_ = accum_;
    if (mode == AggregationMode::kParameters) global_ = round_result_;
    arrived_ = 0;
    ++round_;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] { return round_ != my_round || aborted_; });
    if (round_ == my_round) throw BarrierAborted();
  }
  return round_result_;
}

std::vector<float> ParameterServer::push_and_sum_ranked(
    size_t rank, std::span<const float> data, size_t participants) {
  if (rank >= workers_)
    throw std::invalid_argument("push_and_sum_ranked: bad rank");
  if (participants == 0 || participants > workers_)
    throw std::invalid_argument("push_and_sum_ranked: bad participant count");
  std::unique_lock<std::mutex> lock(mutex_);
  if (aborted_) throw BarrierAborted();
  if (data.size() != global_.size())
    throw std::invalid_argument("push_and_sum_ranked: dim mismatch");

  if (ranked_arrived_ == 0) {
    ranked_slots_.assign(global_.size() * workers_, 0.f);
    ranked_expected_ = participants;
  } else if (ranked_expected_ != participants) {
    throw std::logic_error("push_and_sum_ranked: inconsistent participants");
  }
  std::copy(data.begin(), data.end(),
            ranked_slots_.begin() + rank * data.size());
  const uint64_t my_round = ranked_round_;

  if (++ranked_arrived_ == ranked_expected_) {
    ranked_result_.resize(global_.size());
    for (size_t i = 0; i < global_.size(); ++i) {
      float acc = 0.f;
      for (size_t w = 0; w < workers_; ++w)
        acc += ranked_slots_[w * global_.size() + i];
      ranked_result_[i] = acc;
    }
    ranked_arrived_ = 0;
    ++ranked_round_;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] { return ranked_round_ != my_round || aborted_; });
    if (ranked_round_ == my_round) throw BarrierAborted();
  }
  return ranked_result_;
}

void ParameterServer::store(std::span<const float> params) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (params.size() != global_.size())
    throw std::invalid_argument("store: dim mismatch");
  std::copy(params.begin(), params.end(), global_.begin());
}

void ParameterServer::apply_gradient_async(std::span<const float> grad,
                                           double lr) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (grad.size() != global_.size())
    throw std::invalid_argument("apply_gradient_async: dim mismatch");
  const float flr = static_cast<float>(lr);
  for (size_t i = 0; i < grad.size(); ++i) global_[i] -= flr * grad[i];
  ++async_updates_;
}

void ParameterServer::apply_delta_async(std::span<const float> delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (delta.size() != global_.size())
    throw std::invalid_argument("apply_delta_async: dim mismatch");
  for (size_t i = 0; i < delta.size(); ++i) global_[i] += delta[i];
  ++async_updates_;
}

uint64_t ParameterServer::min_active_iteration_locked() const {
  uint64_t min_iter = std::numeric_limits<uint64_t>::max();
  bool any = false;
  for (size_t w = 0; w < workers_; ++w)
    if (!worker_done_[w]) {
      min_iter = std::min(min_iter, worker_iteration_[w]);
      any = true;
    }
  return any ? min_iter : std::numeric_limits<uint64_t>::max();
}

void ParameterServer::enforce_staleness(size_t rank, uint64_t iteration,
                                        uint64_t staleness) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (aborted_) throw BarrierAborted();
  worker_iteration_[rank] = iteration;
  cv_.notify_all();
  cv_.wait(lock, [&] {
    if (aborted_) return true;
    const uint64_t floor = min_active_iteration_locked();
    return floor == std::numeric_limits<uint64_t>::max() ||
           iteration <= floor + staleness;
  });
  if (aborted_) throw BarrierAborted();
}

void ParameterServer::finish(size_t rank) {
  std::lock_guard<std::mutex> lock(mutex_);
  worker_done_[rank] = true;
  cv_.notify_all();
}

void ParameterServer::abort() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
  }
  cv_.notify_all();
}

bool ParameterServer::aborted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return aborted_;
}

uint64_t ParameterServer::async_updates() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return async_updates_;
}

}  // namespace selsync
