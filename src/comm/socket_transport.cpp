#include "comm/socket_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

namespace selsync {

namespace {

std::string errno_text(const std::string& op) {
  return op + ": " + std::strerror(errno);
}

sockaddr_in loopback(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw SocketError("bad address '" + host +
                      "' (the loopback transport speaks dotted IPv4)");
  return addr;
}

}  // namespace

TcpConn::~TcpConn() { close(); }

TcpConn::TcpConn(TcpConn&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

TcpConn& TcpConn::operator=(TcpConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpConn::send_all(const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a vanished peer must surface as SocketError on this
    // thread, not SIGPIPE for the whole process.
    const ssize_t n =
        ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw SocketError(errno_text("send"));
    }
    sent += static_cast<size_t>(n);
  }
}

void TcpConn::recv_all(uint8_t* data, size_t size, size_t* got) {
  size_t read = 0;
  if (got) *got = 0;
  while (read < size) {
    const ssize_t n = ::recv(fd_, data + read, size - read, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw SocketError(errno_text("recv"));
    }
    if (n == 0) {
      if (got) *got = read;
      throw SocketError("peer closed the connection");
    }
    read += static_cast<size_t>(n);
    if (got) *got = read;
  }
}

void TcpConn::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::TcpListener(uint16_t port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw SocketError(errno_text("socket"));
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback("127.0.0.1", port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string text = errno_text("bind 127.0.0.1:" +
                                        std::to_string(port));
    close();
    throw SocketError(text);
  }
  if (::listen(fd_, backlog) < 0) {
    const std::string text = errno_text("listen");
    close();
    throw SocketError(text);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const std::string text = errno_text("getsockname");
    close();
    throw SocketError(text);
  }
  port_ = ntohs(bound.sin_port);
}

TcpListener::~TcpListener() { close(); }

TcpConn TcpListener::accept(double timeout_s) {
  pollfd pfd{fd_, POLLIN, 0};
  const int timeout_ms = static_cast<int>(timeout_s * 1000.0);
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) throw SocketError(errno_text("poll"));
  if (ready == 0)
    throw SocketError("accept timed out after " + std::to_string(timeout_s) +
                      " s: a worker never connected (check it was spawned "
                      "and is dialing the right port)");
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) throw SocketError(errno_text("accept"));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpConn(fd);
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpConn tcp_connect(const std::string& host, uint16_t port, double timeout_s,
                    int retries) {
  const sockaddr_in addr = loopback(host, port);
  std::string last_error;
  // Bounded exponential backoff: 10ms, 20ms, 40ms, ... capped at 500ms —
  // enough for a worker to win the race with the master's listen() without
  // stretching a genuine refusal into seconds.
  int backoff_ms = 10;
  for (int attempt = 0; attempt <= retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, 500);
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw SocketError(errno_text("socket"));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      // connect() succeeded within the kernel's own timeout; the
      // caller-facing `timeout_s` bounds the retry loop below.
      return TcpConn(fd);
    }
    last_error = errno_text("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    (void)timeout_s;
  }
  throw SocketError(last_error + " (gave up after " +
                    std::to_string(retries + 1) + " attempts)");
}

void send_frame(TcpConn& conn, uint16_t verb,
                const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> header = wire::encode_header(verb, payload.size());
  conn.send_all(header.data(), header.size());
  if (!payload.empty()) conn.send_all(payload.data(), payload.size());
}

std::vector<uint8_t> recv_frame(TcpConn& conn, uint16_t* verb) {
  uint8_t header[wire::kHeaderBytes];
  size_t got = 0;
  try {
    conn.recv_all(header, sizeof(header), &got);
  } catch (const SocketError&) {
    // EOF exactly on a frame boundary is the peer hanging up (SocketError);
    // EOF with a header half-read is a torn frame (WireFormatError).
    if (got == 0) throw;
    throw wire::WireFormatError(
        "torn frame: stream ended " + std::to_string(got) + " bytes into a " +
        std::to_string(wire::kHeaderBytes) + "-byte header");
  }
  const wire::FrameHeader parsed =
      wire::decode_header(header, sizeof(header));
  std::vector<uint8_t> payload(parsed.payload_len);
  if (!payload.empty()) {
    try {
      conn.recv_all(payload.data(), payload.size(), &got);
    } catch (const SocketError&) {
      throw wire::WireFormatError(
          "torn frame: stream ended " + std::to_string(got) +
          " bytes into a " + std::to_string(payload.size()) +
          "-byte payload");
    }
  }
  *verb = parsed.verb;
  return payload;
}

}  // namespace selsync
