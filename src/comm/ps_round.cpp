#include "comm/ps_round.hpp"

#include <algorithm>
#include <stdexcept>

#include "comm/barrier.hpp"

namespace selsync {

PsRound::PsRound(size_t dim, size_t workers) : dim_(dim), workers_(workers) {
  if (dim == 0) throw std::invalid_argument("PsRound: zero-length payload");
  if (workers == 0) throw std::invalid_argument("PsRound: 0 workers");
}

uint64_t PsRound::begin(const PsRoundConfig& config) {
  if (config.participants == 0 || config.participants > workers_)
    throw std::invalid_argument("PsRound::begin: bad participant count");
  if (config.values > dim_)
    throw std::invalid_argument("PsRound::begin: values exceeds dim");
  std::lock_guard<std::mutex> lock(mutex_);
  if (aborted_) throw BarrierAborted();
  if (begun_ == 0) {
    config_ = config;
  } else if (config_.participants != config.participants ||
             config_.order != config.order ||
             config_.average != config.average ||
             config_.values != config.values) {
    throw std::logic_error("PsRound::begin: inconsistent round config");
  }
  if (++begun_ > config_.participants)
    throw std::logic_error("PsRound::begin: more joiners than participants");
  return round_;
}

void PsRound::contribute(uint64_t ticket, size_t rank,
                         std::span<const float> data) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (aborted_) throw BarrierAborted();
  if (ticket != round_)
    throw std::logic_error("PsRound::contribute: stale ticket");
  if (arrived_ >= begun_)
    throw std::logic_error("PsRound::contribute: contribution without begin");
  // config_.values = 0 means the server's full dim (PsRoundConfig).
  const size_t round_dim = config_.values != 0 ? config_.values : dim_;
  if (data.size() != round_dim)
    throw std::invalid_argument("PsRound::contribute: dim mismatch");

  if (config_.order == PsRoundOrder::kRanked) {
    if (rank >= workers_)
      throw std::invalid_argument("PsRound::contribute: bad rank");
    // Rank-slotted: absent ranks contribute exactly zero.
    if (arrived_ == 0) buffer_.assign(round_dim * workers_, 0.f);
    std::copy(data.begin(), data.end(), buffer_.begin() + rank * round_dim);
  } else {
    // Arrival order: fold in lock order as contributions land.
    if (arrived_ == 0) buffer_.assign(round_dim, 0.f);
    for (size_t i = 0; i < round_dim; ++i) buffer_[i] += data[i];
  }

  if (++arrived_ < config_.participants) return;

  // Last arrival: fold and publish.
  if (config_.order == PsRoundOrder::kRanked) {
    result_.resize(round_dim);
    for (size_t i = 0; i < round_dim; ++i) {
      float acc = 0.f;
      for (size_t w = 0; w < workers_; ++w) acc += buffer_[w * round_dim + i];
      result_[i] = acc;
    }
  } else {
    result_ = buffer_;
  }
  if (config_.average) {
    const float inv = 1.f / static_cast<float>(config_.participants);
    for (auto& v : result_) v *= inv;
  }
  arrived_ = 0;
  begun_ = 0;
  ++round_;
  cv_.notify_all();
}

std::vector<float> PsRound::await(uint64_t ticket) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return round_ != ticket || aborted_; });
  if (round_ == ticket) throw BarrierAborted();
  // At most one folded-but-unawaited round exists per PsRound: round i+1
  // cannot fold until every participant contributed again, which requires
  // each to have awaited round i first. So result_ still holds the
  // ticket's fold here.
  return result_;
}

void PsRound::abort() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
  }
  cv_.notify_all();
}

bool PsRound::aborted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return aborted_;
}

}  // namespace selsync
