#include "comm/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace selsync {

const char* topology_name(Topology topology) {
  return enum_name(kTopologyNames, topology);
}

NetworkProfile paper_network_5gbps() {
  NetworkProfile net;
  net.name = "5Gbps-docker-swarm";
  net.bandwidth_bps = 5e9;
  net.server_bandwidth_bps = 40e9;
  net.latency_s = 200e-6;  // container overlay network
  net.op_overhead_s = 1e-3;
  net.wire_compression = 0.5;  // fp16 payloads
  net.overlap_factor = 1.0;
  return net;
}

NetworkProfile network_25gbps() {
  NetworkProfile net;
  net.name = "25Gbps-datacenter";
  net.bandwidth_bps = 25e9;
  net.server_bandwidth_bps = 200e9;
  net.latency_s = 50e-6;
  net.op_overhead_s = 0.5e-3;
  net.wire_compression = 0.5;
  net.overlap_factor = 1.0;
  return net;
}

double CostModel::ps_sync_time(size_t bytes, size_t workers) const {
  if (workers <= 1) return 0.0;
  const double n = static_cast<double>(workers);
  const double transfer =
      2.0 * n * wire_bytes(static_cast<double>(bytes)) * 8.0 /
      net_.server_bandwidth_bps;
  return net_.overlap_factor * transfer + 2.0 * net_.latency_s +
         net_.op_overhead_s;
}

double CostModel::ps_shard_sync_time(size_t bytes, size_t workers,
                                     size_t shards) const {
  if (shards <= 1) return ps_sync_time(bytes, workers);
  return ps_sync_time((bytes + shards - 1) / shards, workers);
}

double CostModel::ps_oneway_time(size_t bytes, size_t active) const {
  const double contention = static_cast<double>(std::max<size_t>(active, 1));
  const double transfer = contention *
                          wire_bytes(static_cast<double>(bytes)) * 8.0 /
                          net_.server_bandwidth_bps;
  return net_.overlap_factor * transfer + net_.latency_s + net_.op_overhead_s;
}

double CostModel::ring_allreduce_time(size_t bytes, size_t workers) const {
  if (workers <= 1) return 0.0;
  const double n = static_cast<double>(workers);
  const double transfer = 2.0 * (n - 1.0) / n *
                          wire_bytes(static_cast<double>(bytes)) * 8.0 /
                          net_.bandwidth_bps;
  return net_.overlap_factor * transfer + 2.0 * (n - 1.0) * net_.latency_s +
         net_.op_overhead_s;
}

double CostModel::tree_allreduce_time(size_t bytes, size_t workers) const {
  if (workers <= 1) return 0.0;
  const double rounds = std::ceil(std::log2(static_cast<double>(workers)));
  const double transfer =
      wire_bytes(static_cast<double>(bytes)) * 8.0 / net_.bandwidth_bps;
  return net_.overlap_factor * 2.0 * rounds * (transfer + net_.latency_s) +
         net_.op_overhead_s;
}

double CostModel::flag_allgather_time(size_t workers) const {
  if (workers <= 1) return 0.0;
  // One bit per worker; entirely latency/overhead bound (paper: ~2-4 ms).
  return 2.0 * net_.latency_s + 2.5e-3;
}

double CostModel::p2p_time(size_t bytes) const {
  return static_cast<double>(bytes) * 8.0 / net_.bandwidth_bps +
         net_.latency_s;
}

}  // namespace selsync
