// The per-layer priority slice schedule of the sliced data plane
// (DESIGN.md §12).
//
// P3 (Priority-based Parameter Propagation, PAPERS.md) observes that a
// model's gradient does not become ready all at once: backward sweeps from
// the output layer toward the input, so the output layers' gradients exist
// while most of the backward pass is still running. Slicing the flat
// parameter vector into layer-aligned priority slices and synchronizing
// them output-first lets communication start as soon as the first segment
// is ready, hiding transfer time behind the remaining compute.
//
// SliceSchedule is the static description of that partition for one model:
// contiguous [offset, length) ranges of the flat parameter/gradient vector,
// each annotated with the fraction of the backward pass completed when its
// gradient segment is fully ready, emitted in the order the data plane
// should move them. It is pure arithmetic over layer sizes — no tensors, no
// comm state — so the worker loop builds one from the executed model's
// layer shapes and the benches build them from paper-scale profiles.
//
// Conventions, fixed so every consumer agrees:
//  * The flat vector is laid out input-layer-first (nn::Model::params()
//    order), so the *output* layers live at the tail (highest offsets).
//  * Backward readiness: the slice [o, o+len) is fully ready once backward
//    has swept down to offset o, i.e. after (total - o) / total of the
//    backward work (backward cost is taken proportional to parameter
//    volume). ready_fraction depends only on the offsets, never on the
//    emission order.
//  * kOutputFirst emits descending offsets (P3 priority = readiness order);
//    kInputFirst emits ascending offsets — the anti-priority baseline whose
//    first slice is only ready when backward finishes, so overlap saves
//    nothing. Keeping both makes the priority claim testable.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/enum_names.hpp"

namespace selsync {

/// Emission order of the slices (see file comment). Serialized into run
/// records as TrainJob::slice_order when slices > 1.
enum class SliceScheduleKind { kOutputFirst, kInputFirst };

/// Canonical --slice-order spellings; selsync_lint (enum-table) keeps this
/// table in lockstep with the enumerator list above.
inline constexpr EnumEntry<SliceScheduleKind> kSliceScheduleKindNames[] = {
    {SliceScheduleKind::kOutputFirst, "output-first"},
    {SliceScheduleKind::kInputFirst, "input-first"},
};

const char* slice_schedule_kind_name(SliceScheduleKind kind);

/// "output-first" | "input-first" -> kind; nullopt for anything else.
std::optional<SliceScheduleKind> slice_schedule_kind_from_name(
    std::string_view name);

/// The accepted --slice-order spellings, for CLI help and error messages.
std::string slice_schedule_kind_names();

/// One priority slice: a contiguous range of the flat parameter vector and
/// the fraction of the backward pass completed when its gradient is ready.
struct SyncSlice {
  size_t offset = 0;
  size_t length = 0;
  double ready_fraction = 1.0;
};

class SliceSchedule {
 public:
  /// The degenerate one-slice schedule: the whole payload, ready only when
  /// backward finishes — exactly the pre-slicing step-end barrier.
  static SliceSchedule single(size_t total_params);

  /// Partitions `layer_sizes` (flat-vector order, input layer first) into at
  /// most `slices` contiguous layer-aligned groups balanced by parameter
  /// volume, emitted in `kind` priority order. The slice count saturates at
  /// the layer count — slices never split a layer, so error-feedback
  /// residuals and PS shard ranges stay aligned with whole tensors.
  static SliceSchedule build(const std::vector<size_t>& layer_sizes,
                             size_t slices, SliceScheduleKind kind);

  const std::vector<SyncSlice>& slices() const { return slices_; }
  size_t size() const { return slices_.size(); }
  size_t total_params() const { return total_; }
  bool single_slice() const { return slices_.size() <= 1; }
  SliceScheduleKind kind() const { return kind_; }

 private:
  std::vector<SyncSlice> slices_;
  size_t total_ = 0;
  SliceScheduleKind kind_ = SliceScheduleKind::kOutputFirst;
};

}  // namespace selsync
