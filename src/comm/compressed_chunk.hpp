// Per-chunk codec state for the chunked transports (DESIGN.md §8).
//
// The ring and tree data planes do not move one monolithic gradient: the
// ring circulates N chunks through 2*(N-1) hops, the tree gathers per-rank
// contributions and broadcasts one reduced vector. Fusing a gradient codec
// into those protocols therefore needs codec state *per (rank, payload
// slot)* — each recurring payload keeps its own DGC error-feedback residual,
// so what one hop drops is fed back into the same payload next round — plus
// per-rank wire accounting that sums what actually crossed each link.
//
// ChunkCodec is that state. It deliberately shares the encode->decode kernel
// (comm/compression.hpp: codec_transform) with the full-vector
// GradientCompressor the shared-memory and PS backends use, so every
// transport applies identical codec semantics and only the chunking differs.
//
// Charging contract: transform() applies the codec (lossy, with feedback)
// but charges nothing — the transport charges per *send* via charge(), so an
// already-encoded chunk forwarded verbatim through several hops is priced on
// every link it crosses without being re-lossed on each.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <vector>

#include "comm/compression.hpp"

namespace selsync {

class ChunkCodec {
 public:
  /// One independent codec state per rank; each rank's state is only ever
  /// touched by that rank's worker thread.
  ChunkCodec(const CompressionConfig& config, size_t workers);

  /// Starts a synchronization round for `rank`: resolves the adaptive Top-k
  /// fraction against the rank's current Δ(g) and resets its wire account
  /// (and the slot base back to 0).
  void begin_round(size_t rank, double delta);

  /// Offsets every subsequent transform() slot for `rank` by `base`. The
  /// sliced data plane reuses one transport round per slice, so the same
  /// protocol slots recur with different payloads; rebasing per slice keys
  /// each slice's error-feedback residuals separately instead of mixing
  /// residuals across slices that happen to share a protocol slot.
  void set_slot_base(size_t rank, size_t base);

  /// Encode->decode `chunk` in place with error feedback keyed on
  /// (rank, slot). Returns the encoded wire size in bytes. Does not charge —
  /// see the charging contract above.
  size_t transform(size_t rank, size_t slot, std::span<float> chunk);

  /// Accounts one send on `rank`'s links: `wire` encoded bytes standing in
  /// for `dense` uncompressed ones.
  void charge(size_t rank, size_t wire, size_t dense);

  /// wire/dense ratio accumulated since begin_round (1.0 when the rank sent
  /// nothing, e.g. a single-worker ring).
  double round_ratio(size_t rank) const;

  const CompressionConfig& config() const { return config_; }

  /// ---- SyncPlan handoff (DESIGN.md §14) ----------------------------------
  /// Per-(rank, slot) error-feedback residuals, exported at a phase boundary
  /// and adopted by the successor's codec when the kind matches. Only the
  /// residual maps travel: wire accounts and slot bases are per-round state
  /// that begin_round() resets anyway.
  std::vector<std::map<size_t, std::vector<float>>> export_residuals() const {
    std::vector<std::map<size_t, std::vector<float>>> out;
    out.reserve(ranks_.size());
    for (const RankState& state : ranks_) out.push_back(state.residuals);
    return out;
  }
  void adopt_residuals(
      const std::vector<std::map<size_t, std::vector<float>>>& residuals) {
    for (size_t r = 0; r < ranks_.size() && r < residuals.size(); ++r) {
      ranks_[r].residuals = residuals[r];
    }
  }

 private:
  struct RankState {
    CompressionConfig effective;
    /// slot -> error-feedback residual for that recurring payload.
    std::map<size_t, std::vector<float>> residuals;
    /// Added to every transform() slot (see set_slot_base).
    size_t slot_base = 0;
    size_t wire = 0;
    size_t dense = 0;
  };

  CompressionConfig config_;
  std::vector<RankState> ranks_;
};

}  // namespace selsync
