#include "comm/collectives.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "comm/compressed_chunk.hpp"
#include "comm/fault_injector.hpp"

namespace selsync {

SharedCollectives::SharedCollectives(size_t workers)
    : workers_(workers), barrier_(workers), full_(CommGroup::full(workers)) {
  if (workers == 0)
    throw std::invalid_argument("SharedCollectives: zero workers");
  double_buf_.resize(workers);
  byte_buf_.resize(workers);
}

void SharedCollectives::allreduce_sum(size_t rank, std::span<float> data) {
  allreduce_sum(rank, data, full_);
}

void SharedCollectives::allreduce_sum(size_t rank, std::span<float> data,
                                      const CommGroup& group) {
  // Contributions land in per-rank slots and every member reduces them in
  // rank order, so the float summation order is fixed: results are
  // bit-identical across ranks and across runs regardless of thread
  // scheduling (the determinism the paper gets from NCCL's fixed reduction
  // trees). The leader zeroes all N slots first, so absent ranks contribute
  // exactly zero.
  barrier(group);
  if (rank == group.leader) float_buf_.assign(data.size() * workers_, 0.f);
  barrier(group);
  if (float_buf_.size() != data.size() * workers_)
    throw std::invalid_argument("allreduce_sum: length mismatch");
  std::copy(data.begin(), data.end(), float_buf_.begin() + rank * data.size());
  barrier(group);
  for (size_t i = 0; i < data.size(); ++i) {
    float acc = 0.f;
    for (size_t w = 0; w < workers_; ++w)
      acc += float_buf_[w * data.size() + i];
    data[i] = acc;
  }
  barrier(group);
}

void SharedCollectives::allreduce_mean(size_t rank, std::span<float> data) {
  allreduce_mean(rank, data, full_);
}

void SharedCollectives::allreduce_mean(size_t rank, std::span<float> data,
                                       const CommGroup& group) {
  allreduce_sum(rank, data, group);
  const float inv = 1.f / static_cast<float>(group.size);
  for (auto& v : data) v *= inv;
}

double SharedCollectives::allreduce_max(size_t rank, double value) {
  return allreduce_max(rank, value, full_);
}

double SharedCollectives::allreduce_max(size_t rank, double value,
                                        const CommGroup& group) {
  barrier(group);
  if (rank == group.leader)
    std::fill(double_buf_.begin(), double_buf_.end(),
              -std::numeric_limits<double>::infinity());
  barrier(group);
  double_buf_[rank] = value;
  barrier(group);
  const double result =
      *std::max_element(double_buf_.begin(), double_buf_.end());
  barrier(group);
  return result;
}

std::vector<uint8_t> SharedCollectives::allgather_byte(size_t rank,
                                                       uint8_t value) {
  return allgather_byte(rank, value, full_);
}

std::vector<uint8_t> SharedCollectives::allgather_byte(size_t rank,
                                                       uint8_t value,
                                                       const CommGroup& group) {
  barrier(group);
  if (rank == group.leader) std::fill(byte_buf_.begin(), byte_buf_.end(), 0);
  barrier(group);
  byte_buf_[rank] = value;
  barrier(group);
  std::vector<uint8_t> result = byte_buf_;
  barrier(group);
  return result;
}

void SharedCollectives::broadcast(size_t rank, size_t root,
                                  std::span<float> data) {
  broadcast(rank, root, data, full_);
}

void SharedCollectives::broadcast(size_t rank, size_t root,
                                  std::span<float> data,
                                  const CommGroup& group) {
  barrier(group);
  if (rank == root) float_buf_.assign(data.begin(), data.end());
  barrier(group);
  if (rank != root) {
    if (float_buf_.size() != data.size())
      throw std::invalid_argument("broadcast: length mismatch");
    std::copy(float_buf_.begin(), float_buf_.end(), data.begin());
  }
  barrier(group);
}

RingAllreduce::RingAllreduce(size_t workers, FaultInjector* faults)
    : workers_(workers), faults_(faults),
      send_seq_(workers, 0), recv_seq_(workers, 0) {
  if (workers == 0) throw std::invalid_argument("RingAllreduce: zero workers");
  links_.reserve(workers);
  for (size_t i = 0; i < workers; ++i)
    links_.push_back(std::make_unique<Channel<Envelope>>());
}

void RingAllreduce::close_all() {
  for (auto& link : links_) link->close();
}

void RingAllreduce::send_reliable(size_t rank, size_t link,
                                  std::vector<float> payload,
                                  size_t wire_bytes) {
  Envelope env;
  env.seq = ++send_seq_[rank];
  env.wire_bytes = wire_bytes;
  if (faults_) {
    const uint64_t it = faults_->current_iteration(rank);
    switch (faults_->draw_message_fate(rank)) {
      case MessageFate::kDrop:
        // The first copy is lost; the sender notices the missing ack after
        // the retransmit timeout and sends again. Only the retransmission
        // is enqueued — the wire outcome is one late delivery.
        faults_->record(rank, FaultKind::kMessageDrop, it,
                        faults_->plan().messages.retransmit_timeout_s);
        faults_->add_pending_delay(
            rank, faults_->plan().messages.retransmit_timeout_s);
        break;
      case MessageFate::kDelay:
        env.delay_s = faults_->plan().messages.delay_s;
        faults_->record(rank, FaultKind::kMessageDelay, it, env.delay_s);
        break;
      case MessageFate::kDuplicate: {
        faults_->record(rank, FaultKind::kMessageDuplicate, it, 0.0);
        Envelope dup;
        dup.seq = env.seq;
        dup.wire_bytes = env.wire_bytes;
        dup.data = payload;  // extra copy rides ahead of the original
        links_[link]->send(std::move(dup));
        break;
      }
      case MessageFate::kDeliver:
        break;
    }
  }
  env.data = std::move(payload);
  links_[link]->send(std::move(env));
}

RingAllreduce::Envelope RingAllreduce::recv_reliable(size_t rank,
                                                     size_t link) {
  (void)rank;
  while (true) {
    auto msg = links_[link]->recv();
    if (!msg) throw std::runtime_error("ring allreduce: channel closed");
    if (msg->seq <= recv_seq_[link]) continue;  // duplicate: drop silently
    recv_seq_[link] = msg->seq;
    if (faults_ && msg->delay_s > 0.0)
      faults_->add_pending_delay(rank, msg->delay_s);
    return std::move(*msg);
  }
}

void RingAllreduce::run(size_t rank, std::span<float> data,
                        ChunkCodec* codec) {
  if (workers_ == 1) return;
  const size_t n = data.size();
  const size_t chunks = workers_;
  auto chunk_begin = [&](size_t c) { return c * n / chunks; };
  auto chunk_end = [&](size_t c) { return (c + 1) * n / chunks; };

  const size_t out = rank;
  const size_t in = (rank + workers_ - 1) % workers_;

  // Reduce-scatter: after step s, each rank accumulates into chunk
  // (rank - s - 1) mod N; after N-1 steps rank r owns the fully reduced
  // chunk (r + 1) mod N. Each outgoing partial sum exists here only as
  // decoded floats, so with a codec every hop is one fresh lossy encode —
  // error feedback keyed on (rank, chunk) repays the loss next round.
  for (size_t s = 0; s < workers_ - 1; ++s) {
    const size_t send_c = (rank + workers_ - s) % workers_;
    const size_t recv_c = (rank + workers_ - s - 1) % workers_;
    std::vector<float> payload(data.begin() + chunk_begin(send_c),
                               data.begin() + chunk_end(send_c));
    size_t wire = 0;
    if (codec) {
      wire = codec->transform(rank, send_c, payload);
      codec->charge(rank, wire, payload.size() * sizeof(float));
    }
    send_reliable(rank, out, std::move(payload), wire);
    const Envelope msg = recv_reliable(rank, in);
    float* dst = data.data() + chunk_begin(recv_c);
    for (size_t i = 0; i < msg.data.size(); ++i) dst[i] += msg.data[i];
  }

  // The fully reduced chunk this rank owns is encoded exactly once, before
  // it enters the allgather; every rank then decodes the same bytes, so
  // replicas leave the allreduce consistent.
  std::vector<size_t> chunk_wire(chunks, 0);
  if (codec) {
    const size_t own_c = (rank + 1) % workers_;
    chunk_wire[own_c] = codec->transform(
        rank, own_c,
        std::span<float>(data.data() + chunk_begin(own_c),
                         chunk_end(own_c) - chunk_begin(own_c)));
  }

  // Allgather: circulate the reduced chunks. Already-encoded chunks are
  // forwarded verbatim — no re-encode, no further loss — but every link
  // crossing is priced at the encoded size carried in the envelope.
  for (size_t s = 0; s < workers_ - 1; ++s) {
    const size_t send_c = (rank + 1 + workers_ - s) % workers_;
    const size_t recv_c = (rank + workers_ - s) % workers_;
    std::vector<float> payload(data.begin() + chunk_begin(send_c),
                               data.begin() + chunk_end(send_c));
    if (codec)
      codec->charge(rank, chunk_wire[send_c], payload.size() * sizeof(float));
    send_reliable(rank, out, std::move(payload), chunk_wire[send_c]);
    const Envelope msg = recv_reliable(rank, in);
    chunk_wire[recv_c] = msg.wire_bytes;
    std::copy(msg.data.begin(), msg.data.end(),
              data.data() + chunk_begin(recv_c));
  }
}

}  // namespace selsync
