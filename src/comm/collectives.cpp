#include "comm/collectives.hpp"

#include <algorithm>
#include <stdexcept>

namespace selsync {

SharedCollectives::SharedCollectives(size_t workers)
    : workers_(workers), barrier_(workers) {
  if (workers == 0)
    throw std::invalid_argument("SharedCollectives: zero workers");
  double_buf_.resize(workers);
  byte_buf_.resize(workers);
}

void SharedCollectives::allreduce_sum(size_t rank, std::span<float> data) {
  // Contributions land in per-rank slots and every rank reduces them in
  // rank order, so the float summation order is fixed: results are
  // bit-identical across ranks and across runs regardless of thread
  // scheduling (the determinism the paper gets from NCCL's fixed reduction
  // trees).
  barrier();
  if (rank == 0) float_buf_.assign(data.size() * workers_, 0.f);
  barrier();
  if (float_buf_.size() != data.size() * workers_)
    throw std::invalid_argument("allreduce_sum: length mismatch");
  std::copy(data.begin(), data.end(), float_buf_.begin() + rank * data.size());
  barrier();
  for (size_t i = 0; i < data.size(); ++i) {
    float acc = 0.f;
    for (size_t w = 0; w < workers_; ++w)
      acc += float_buf_[w * data.size() + i];
    data[i] = acc;
  }
  barrier();
}

void SharedCollectives::allreduce_mean(size_t rank, std::span<float> data) {
  allreduce_sum(rank, data);
  const float inv = 1.f / static_cast<float>(workers_);
  for (auto& v : data) v *= inv;
}

double SharedCollectives::allreduce_max(size_t rank, double value) {
  barrier();
  double_buf_[rank] = value;
  barrier();
  const double result = *std::max_element(double_buf_.begin(), double_buf_.end());
  barrier();
  return result;
}

std::vector<uint8_t> SharedCollectives::allgather_byte(size_t rank,
                                                       uint8_t value) {
  barrier();
  byte_buf_[rank] = value;
  barrier();
  std::vector<uint8_t> result = byte_buf_;
  barrier();
  return result;
}

void SharedCollectives::broadcast(size_t rank, size_t root,
                                  std::span<float> data) {
  barrier();
  if (rank == root) float_buf_.assign(data.begin(), data.end());
  barrier();
  if (rank != root) {
    if (float_buf_.size() != data.size())
      throw std::invalid_argument("broadcast: length mismatch");
    std::copy(float_buf_.begin(), float_buf_.end(), data.begin());
  }
  barrier();
}

RingAllreduce::RingAllreduce(size_t workers) : workers_(workers) {
  if (workers == 0) throw std::invalid_argument("RingAllreduce: zero workers");
  links_.reserve(workers);
  for (size_t i = 0; i < workers; ++i)
    links_.push_back(std::make_unique<Channel<std::vector<float>>>());
}

void RingAllreduce::run(size_t rank, std::span<float> data) {
  if (workers_ == 1) return;
  const size_t n = data.size();
  const size_t chunks = workers_;
  auto chunk_begin = [&](size_t c) { return c * n / chunks; };
  auto chunk_end = [&](size_t c) { return (c + 1) * n / chunks; };

  Channel<std::vector<float>>& out = *links_[rank];
  Channel<std::vector<float>>& in = *links_[(rank + workers_ - 1) % workers_];

  // Reduce-scatter: after step s, each rank accumulates into chunk
  // (rank - s - 1) mod N; after N-1 steps rank r owns the fully reduced
  // chunk (r + 1) mod N.
  for (size_t s = 0; s < workers_ - 1; ++s) {
    const size_t send_c = (rank + workers_ - s) % workers_;
    const size_t recv_c = (rank + workers_ - s - 1) % workers_;
    out.send(std::vector<float>(data.begin() + chunk_begin(send_c),
                                data.begin() + chunk_end(send_c)));
    auto msg = in.recv();
    if (!msg) throw std::runtime_error("ring allreduce: channel closed");
    float* dst = data.data() + chunk_begin(recv_c);
    for (size_t i = 0; i < msg->size(); ++i) dst[i] += (*msg)[i];
  }
  // Allgather: circulate the reduced chunks.
  for (size_t s = 0; s < workers_ - 1; ++s) {
    const size_t send_c = (rank + 1 + workers_ - s) % workers_;
    const size_t recv_c = (rank + workers_ - s) % workers_;
    out.send(std::vector<float>(data.begin() + chunk_begin(send_c),
                                data.begin() + chunk_end(send_c)));
    auto msg = in.recv();
    if (!msg) throw std::runtime_error("ring allreduce: channel closed");
    std::copy(msg->begin(), msg->end(), data.data() + chunk_begin(recv_c));
  }
}

}  // namespace selsync
