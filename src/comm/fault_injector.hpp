// Deterministic fault injection for the simulated cluster.
//
// A FaultPlan declares, ahead of time, every failure a run should suffer:
// worker crashes (with optional checkpoint restarts), message-level faults
// (drop / delay / duplicate) on channel and PS traffic, parameter-server
// timeouts retried with exponential backoff, and compute stragglers. The
// FaultInjector turns the plan into per-worker decision streams seeded from
// (plan seed, rank), so a run with the same plan and seed produces the same
// fault schedule, the same recovery actions and a byte-identical RunRecord
// regardless of thread scheduling (DESIGN.md "Failure model").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/enum_names.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

#include <mutex>

#include "comm/wait_slot.hpp"

namespace selsync {

/// Crash worker `rank` at the top of iteration `at_iteration`. With
/// `restart` the worker is down for `downtime_iterations` cluster rounds,
/// then restores its last in-memory checkpoint and rejoins; without it the
/// worker is gone for good and the survivors carry the run.
struct CrashEvent {
  size_t rank = 0;
  uint64_t at_iteration = 0;
  uint64_t downtime_iterations = 10;
  bool restart = true;
};

/// Per-message fault probabilities. A dropped message is detected by the
/// sender's (simulated) ack timeout and retransmitted after
/// `retransmit_timeout_s`; a delayed message arrives `delay_s` late; a
/// duplicated message is delivered twice and deduplicated by sequence
/// number at the receiver.
struct MessageFaultConfig {
  double drop_prob = 0.0;
  double delay_prob = 0.0;
  double duplicate_prob = 0.0;
  double delay_s = 0.002;
  double retransmit_timeout_s = 0.01;

  bool any() const {
    return drop_prob > 0.0 || delay_prob > 0.0 || duplicate_prob > 0.0;
  }
};

/// Parameter-server RPC timeouts: each push/pull times out with
/// `timeout_prob` and is retried with exponential backoff
/// (base_backoff_s * 2^attempt). After `max_retries` failures the caller
/// gives up: SSP workers skip that push/pull (degraded progress);
/// synchronous rounds absorb the final backoff and complete (the aggregation
/// itself cannot be skipped by a single worker).
struct PsFaultConfig {
  double timeout_prob = 0.0;
  size_t max_retries = 3;
  double base_backoff_s = 0.005;

  bool any() const { return timeout_prob > 0.0; }
};

/// Worker `rank` computes `slowdown`x slower during
/// [from_iteration, from_iteration + duration_iterations).
struct StragglerEvent {
  size_t rank = 0;
  uint64_t from_iteration = 0;
  uint64_t duration_iterations = 50;
  double slowdown = 2.0;
};

struct FaultPlan {
  uint64_t seed = 0;
  /// In-memory checkpoint cadence (iterations) for workers with restartable
  /// crashes in the plan.
  uint64_t checkpoint_interval = 25;
  /// Simulated seconds a restarting worker spends coming back up.
  double restart_cost_s = 0.0;
  std::vector<CrashEvent> crashes;
  std::vector<StragglerEvent> stragglers;
  MessageFaultConfig messages;
  PsFaultConfig ps;

  bool enabled() const {
    return !crashes.empty() || !stragglers.empty() || messages.any() ||
           ps.any();
  }

  /// Sorts per-rank crash/straggler lists and checks ranks, probabilities,
  /// overlap and iteration bounds. Throws std::invalid_argument.
  void validate(size_t workers, uint64_t max_iterations) const;
};

/// Builds a FaultPlan from its JSON form (see examples/fault_plan.json).
/// Unknown keys and out-of-range values throw std::invalid_argument.
FaultPlan fault_plan_from_json(const JsonValue& json);

/// Parses JSON text into a FaultPlan (convenience for the CLI and tests).
FaultPlan parse_fault_plan(const std::string& text);

/// Serializes a plan back to JSON for the run record.
JsonValue fault_plan_to_json(const FaultPlan& plan);

enum class FaultKind {
  kCrash,
  kRestart,
  kRecoverySync,
  kCheckpoint,
  kMessageDrop,
  kMessageDelay,
  kMessageDuplicate,
  kPsTimeout,
  kPsGiveUp,
  kStragglerStart,
  kQuorumLost,
};

/// Wire names used in the run-record fault log (golden records pin the exact
/// spellings); selsync_lint (enum-table) keeps this table in lockstep with
/// the enumerator list above.
inline constexpr EnumEntry<FaultKind> kFaultKindNames[] = {
    {FaultKind::kCrash, "crash"},
    {FaultKind::kRestart, "restart"},
    {FaultKind::kRecoverySync, "recovery_sync"},
    {FaultKind::kCheckpoint, "checkpoint"},
    {FaultKind::kMessageDrop, "message_drop"},
    {FaultKind::kMessageDelay, "message_delay"},
    {FaultKind::kMessageDuplicate, "message_duplicate"},
    {FaultKind::kPsTimeout, "ps_timeout"},
    {FaultKind::kPsGiveUp, "ps_give_up"},
    {FaultKind::kStragglerStart, "straggler_start"},
    {FaultKind::kQuorumLost, "quorum_lost"},
};

const char* fault_kind_name(FaultKind kind);

/// One injected fault or recovery action, for the run record. `detail`
/// carries the kind-specific magnitude (downtime iterations, delay seconds,
/// retry attempt, slowdown factor, ...).
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  size_t rank = 0;
  uint64_t iteration = 0;
  double detail = 0.0;
};

/// What happens to one channel message.
enum class MessageFate { kDeliver, kDrop, kDelay, kDuplicate };

/// Aggregate fault accounting attached to TrainResult.
struct FaultSummary {
  std::vector<FaultEvent> events;  // sorted by (iteration, rank, order)
  uint64_t crashes = 0;
  uint64_t restarts = 0;
  uint64_t recovery_syncs = 0;
  uint64_t messages_dropped = 0;
  uint64_t messages_delayed = 0;
  uint64_t messages_duplicated = 0;
  uint64_t ps_timeouts = 0;
  uint64_t ps_give_ups = 0;
  uint64_t straggler_episodes = 0;
  uint64_t quorum_lost_rounds = 0;

  bool any() const { return !events.empty(); }
};

/// Shared by all workers of one run. Schedule queries (active / crashes_at /
/// straggler_factor) are pure functions of the plan; probabilistic draws
/// (message fates, PS timeouts) consume a per-rank RNG stream in program
/// order, and the event log keeps a per-rank sequence number so the merged
/// log has one deterministic order. Per-rank state is only ever touched by
/// the owning worker thread.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, size_t workers);

  const FaultPlan& plan() const { return plan_; }
  size_t workers() const { return workers_; }

  /// ---- crash schedule (pure) -------------------------------------------
  bool active(size_t rank, uint64_t iteration) const;
  /// The crash starting exactly at `iteration`, if any.
  const CrashEvent* crash_starting_at(size_t rank, uint64_t iteration) const;
  /// Ranks whose restart lands exactly on `iteration`.
  std::vector<size_t> rejoining_at(uint64_t iteration) const;
  /// mask[r] == 1 iff worker r participates in iteration `iteration`.
  std::vector<uint8_t> active_mask(uint64_t iteration) const;
  /// True when `rank` has at least one restartable crash (needs
  /// checkpoints).
  bool needs_checkpoints(size_t rank) const;

  /// ---- stragglers (pure) -----------------------------------------------
  double straggler_factor(size_t rank, uint64_t iteration) const;
  const StragglerEvent* straggler_starting_at(size_t rank,
                                              uint64_t iteration) const;

  /// ---- probabilistic draws (consume the rank's stream) -----------------
  MessageFate draw_message_fate(size_t rank);
  /// Number of timeouts before a PS op succeeds, capped at max_retries + 1;
  /// a value > max_retries means the caller should give up.
  size_t draw_ps_timeouts(size_t rank);
  double ps_backoff_s(size_t attempt) const;

  /// ---- simulated-delay accrual (per-rank, thread-local by construction) -
  void add_pending_delay(size_t rank, double seconds);
  double take_pending_delay(size_t rank);

  /// ---- iteration context ------------------------------------------------
  /// Workers publish their loop position so components without an iteration
  /// argument (the ring transport) can stamp events correctly.
  void set_current_iteration(size_t rank, uint64_t iteration);
  uint64_t current_iteration(size_t rank) const;

  /// ---- event log --------------------------------------------------------
  void record(size_t rank, FaultKind kind, uint64_t iteration,
              double detail = 0.0);
  /// Merged log in (iteration, rank, per-rank order) order plus counters.
  FaultSummary summary() const;

 private:
  struct PerRank {
    Rng rng{0};
    std::vector<FaultEvent> events;
    std::vector<uint64_t> event_order;  // per-rank sequence numbers
    uint64_t next_order = 0;
    double pending_delay_s = 0.0;
    uint64_t current_iteration = 0;
  };

  FaultPlan plan_;
  size_t workers_;
  std::vector<PerRank> per_rank_;
  std::vector<std::vector<CrashEvent>> crashes_by_rank_;
  std::vector<std::vector<StragglerEvent>> stragglers_by_rank_;
};

/// How a wait_for_rejoin() call was resolved (see RejoinCoordinator).
enum class RejoinWait {
  kReleased,  ///< released for rejoin at the top of the rejoin iteration
  kStopped,   ///< the cluster stopped first — the rank stays a casualty
  kPaused,    ///< a SyncPlan phase boundary drained the cluster; the rank
              ///< re-parks in the next phase and keeps waiting there
};

/// Rendezvous used by restarting workers in the bulk-synchronous path. A
/// worker that is down parks here; the surviving leader releases it at the
/// top of the rejoin iteration (so the rejoiner cannot enter a barrier
/// generation it is not part of), and any worker leaving the training loop
/// calls shutdown() so parked workers cannot outlive the cluster.
///
/// SyncPlan phase boundaries (DESIGN.md §14) add a third resolution: the
/// phased trainer pause()s the coordinator when the surviving workers hit
/// the boundary, which returns kPaused to every parked rank so its thread
/// can exit the phase; the same coordinator is resume()d for the next
/// phase and the rank parks again with its rejoin schedule intact.
class RejoinCoordinator {
 public:
  explicit RejoinCoordinator(size_t workers) : released_(workers, false) {}

  /// Blocks until release(rank), pause() or shutdown(). A pending release
  /// wins over a concurrent pause — the rejoin happens at the boundary
  /// iteration itself rather than being deferred a phase.
  RejoinWait wait_for_rejoin(size_t rank) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return released_[rank] || stopped_ || paused_; });
    if (released_[rank]) {
      released_[rank] = false;  // re-arm for a later crash of the same rank
      return RejoinWait::kReleased;
    }
    return stopped_ ? RejoinWait::kStopped : RejoinWait::kPaused;
  }

  void release(size_t rank) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      released_[rank] = true;
    }
    cv_.notify_all();
  }

  /// Drains parked ranks out of the current phase (idempotent).
  void pause() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      paused_ = true;
    }
    cv_.notify_all();
  }

  /// Re-arms the coordinator for the next phase (idempotent).
  void resume() {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }

  void shutdown() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopped_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  WaitSlot cv_;
  std::vector<bool> released_;
  bool stopped_ = false;
  bool paused_ = false;
};

}  // namespace selsync
