#include "comm/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace selsync {

namespace {

void check_prob(double p, const char* name) {
  if (!(p >= 0.0 && p <= 1.0))
    throw std::invalid_argument(std::string("FaultPlan: ") + name +
                                " must be in [0, 1]");
}

/// Downtime of a crash; a non-restarting crash lasts forever.
uint64_t crash_end(const CrashEvent& c) {
  if (!c.restart) return UINT64_MAX;
  return c.at_iteration + c.downtime_iterations;
}

}  // namespace

void FaultPlan::validate(size_t workers, uint64_t max_iterations) const {
  if (checkpoint_interval == 0)
    throw std::invalid_argument("FaultPlan: checkpoint_interval must be > 0");
  if (restart_cost_s < 0.0)
    throw std::invalid_argument("FaultPlan: restart_cost_s must be >= 0");
  check_prob(messages.drop_prob, "messages.drop_prob");
  check_prob(messages.delay_prob, "messages.delay_prob");
  check_prob(messages.duplicate_prob, "messages.duplicate_prob");
  if (messages.drop_prob + messages.delay_prob + messages.duplicate_prob >
      1.0)
    throw std::invalid_argument(
        "FaultPlan: message fault probabilities must sum to <= 1");
  if (messages.delay_s < 0.0 || messages.retransmit_timeout_s < 0.0)
    throw std::invalid_argument("FaultPlan: message delays must be >= 0");
  check_prob(ps.timeout_prob, "ps.timeout_prob");
  if (ps.base_backoff_s < 0.0)
    throw std::invalid_argument("FaultPlan: ps.base_backoff_s must be >= 0");

  std::vector<std::vector<const CrashEvent*>> by_rank(workers);
  for (const CrashEvent& c : crashes) {
    if (c.rank >= workers)
      throw std::invalid_argument("FaultPlan: crash rank out of range");
    if (c.at_iteration >= max_iterations)
      throw std::invalid_argument(
          "FaultPlan: crash at_iteration beyond the iteration budget");
    if (c.restart) {
      if (c.downtime_iterations == 0)
        throw std::invalid_argument(
            "FaultPlan: restartable crash needs downtime_iterations > 0");
      if (crash_end(c) >= max_iterations)
        throw std::invalid_argument(
            "FaultPlan: crash restart lands beyond the iteration budget");
    }
    by_rank[c.rank].push_back(&c);
  }
  for (auto& list : by_rank) {
    std::sort(list.begin(), list.end(),
              [](const CrashEvent* a, const CrashEvent* b) {
                return a->at_iteration < b->at_iteration;
              });
    for (size_t i = 1; i < list.size(); ++i) {
      if (!list[i - 1]->restart)
        throw std::invalid_argument(
            "FaultPlan: crash scheduled after a non-restarting crash");
      // `<=` (not `<`): a rank must run at least one iteration between
      // crashes, otherwise it would be "rejoining" and "down" at once.
      if (list[i]->at_iteration <= crash_end(*list[i - 1]))
        throw std::invalid_argument(
            "FaultPlan: a rank needs at least one active iteration between "
            "crashes");
    }
  }
  // Bulk-synchronous rejoin protocol requirement: someone must be around to
  // wake a parked worker and source its recovery sync. For every restart,
  // at least one rank has to be active at the rejoin iteration without
  // itself rejoining there (checked here so SSP-only plans fail fast too;
  // the constraint costs SSP nothing).
  for (const CrashEvent& c : crashes) {
    if (!c.restart) continue;
    const uint64_t rejoin_it = crash_end(c);
    bool survivor = false;
    for (size_t r = 0; r < workers && !survivor; ++r) {
      bool active = true, rejoining = false;
      for (const CrashEvent* other : by_rank[r]) {
        if (rejoin_it >= other->at_iteration &&
            rejoin_it < crash_end(*other))
          active = false;
        if (other->restart && crash_end(*other) == rejoin_it)
          rejoining = true;
      }
      survivor = active && !rejoining;
    }
    if (!survivor)
      throw std::invalid_argument(
          "FaultPlan: a crash restart needs at least one surviving worker "
          "at its rejoin iteration");
  }
  for (const StragglerEvent& s : stragglers) {
    if (s.rank >= workers)
      throw std::invalid_argument("FaultPlan: straggler rank out of range");
    if (s.slowdown < 1.0)
      throw std::invalid_argument("FaultPlan: straggler slowdown must be >= 1");
    if (s.duration_iterations == 0)
      throw std::invalid_argument(
          "FaultPlan: straggler duration_iterations must be > 0");
  }
}

const char* fault_kind_name(FaultKind kind) {
  return enum_name(kFaultKindNames, kind);
}

namespace {

double read_number(const JsonValue& obj, const char* key, double fallback) {
  return obj.contains(key) ? obj.at(key).as_number() : fallback;
}

uint64_t read_u64(const JsonValue& obj, const char* key, uint64_t fallback) {
  if (!obj.contains(key)) return fallback;
  const double d = obj.at(key).as_number();
  if (d < 0.0 || d != std::floor(d))
    throw std::invalid_argument(std::string("fault plan: '") + key +
                                "' must be a non-negative integer");
  return static_cast<uint64_t>(d);
}

bool read_bool(const JsonValue& obj, const char* key, bool fallback) {
  return obj.contains(key) ? obj.at(key).as_bool() : fallback;
}

void reject_unknown_keys(const JsonValue& obj,
                         const std::set<std::string>& known,
                         const char* where) {
  for (const std::string& key : obj.keys())
    if (!known.count(key))
      throw std::invalid_argument(std::string("fault plan: unknown key '") +
                                  key + "' in " + where);
}

}  // namespace

FaultPlan fault_plan_from_json(const JsonValue& json) {
  if (!json.is_object())
    throw std::invalid_argument("fault plan: document must be an object");
  reject_unknown_keys(json,
                      {"seed", "checkpoint_interval", "restart_cost_s",
                       "crashes", "stragglers", "messages", "ps"},
                      "the plan");
  FaultPlan plan;
  plan.seed = read_u64(json, "seed", 0);
  plan.checkpoint_interval = read_u64(json, "checkpoint_interval", 25);
  plan.restart_cost_s = read_number(json, "restart_cost_s", 0.0);

  if (json.contains("crashes")) {
    const JsonValue& arr = json.at("crashes");
    if (!arr.is_array())
      throw std::invalid_argument("fault plan: 'crashes' must be an array");
    for (size_t i = 0; i < arr.size(); ++i) {
      const JsonValue& c = arr.at(i);
      reject_unknown_keys(
          c, {"rank", "at_iteration", "downtime_iterations", "restart"},
          "a crash entry");
      CrashEvent ev;
      ev.rank = static_cast<size_t>(read_u64(c, "rank", 0));
      ev.at_iteration = read_u64(c, "at_iteration", 0);
      ev.downtime_iterations = read_u64(c, "downtime_iterations", 10);
      ev.restart = read_bool(c, "restart", true);
      plan.crashes.push_back(ev);
    }
  }
  if (json.contains("stragglers")) {
    const JsonValue& arr = json.at("stragglers");
    if (!arr.is_array())
      throw std::invalid_argument("fault plan: 'stragglers' must be an array");
    for (size_t i = 0; i < arr.size(); ++i) {
      const JsonValue& s = arr.at(i);
      reject_unknown_keys(
          s, {"rank", "from_iteration", "duration_iterations", "slowdown"},
          "a straggler entry");
      StragglerEvent ev;
      ev.rank = static_cast<size_t>(read_u64(s, "rank", 0));
      ev.from_iteration = read_u64(s, "from_iteration", 0);
      ev.duration_iterations = read_u64(s, "duration_iterations", 50);
      ev.slowdown = read_number(s, "slowdown", 2.0);
      plan.stragglers.push_back(ev);
    }
  }
  if (json.contains("messages")) {
    const JsonValue& m = json.at("messages");
    reject_unknown_keys(m,
                        {"drop_prob", "delay_prob", "duplicate_prob",
                         "delay_s", "retransmit_timeout_s"},
                        "'messages'");
    plan.messages.drop_prob = read_number(m, "drop_prob", 0.0);
    plan.messages.delay_prob = read_number(m, "delay_prob", 0.0);
    plan.messages.duplicate_prob = read_number(m, "duplicate_prob", 0.0);
    plan.messages.delay_s = read_number(m, "delay_s", 0.002);
    plan.messages.retransmit_timeout_s =
        read_number(m, "retransmit_timeout_s", 0.01);
  }
  if (json.contains("ps")) {
    const JsonValue& p = json.at("ps");
    reject_unknown_keys(p, {"timeout_prob", "max_retries", "base_backoff_s"},
                        "'ps'");
    plan.ps.timeout_prob = read_number(p, "timeout_prob", 0.0);
    plan.ps.max_retries = static_cast<size_t>(read_u64(p, "max_retries", 3));
    plan.ps.base_backoff_s = read_number(p, "base_backoff_s", 0.005);
  }
  return plan;
}

FaultPlan parse_fault_plan(const std::string& text) {
  return fault_plan_from_json(JsonValue::parse(text));
}

JsonValue fault_plan_to_json(const FaultPlan& plan) {
  JsonValue j = JsonValue::object();
  j.set("seed", static_cast<double>(plan.seed));
  j.set("checkpoint_interval", static_cast<double>(plan.checkpoint_interval));
  j.set("restart_cost_s", plan.restart_cost_s);
  if (!plan.crashes.empty()) {
    JsonValue arr = JsonValue::array();
    for (const CrashEvent& c : plan.crashes) {
      JsonValue e = JsonValue::object();
      e.set("rank", static_cast<double>(c.rank));
      e.set("at_iteration", static_cast<double>(c.at_iteration));
      e.set("downtime_iterations", static_cast<double>(c.downtime_iterations));
      e.set("restart", c.restart);
      arr.push(std::move(e));
    }
    j.set("crashes", std::move(arr));
  }
  if (!plan.stragglers.empty()) {
    JsonValue arr = JsonValue::array();
    for (const StragglerEvent& s : plan.stragglers) {
      JsonValue e = JsonValue::object();
      e.set("rank", static_cast<double>(s.rank));
      e.set("from_iteration", static_cast<double>(s.from_iteration));
      e.set("duration_iterations",
            static_cast<double>(s.duration_iterations));
      e.set("slowdown", s.slowdown);
      arr.push(std::move(e));
    }
    j.set("stragglers", std::move(arr));
  }
  if (plan.messages.any()) {
    JsonValue m = JsonValue::object();
    m.set("drop_prob", plan.messages.drop_prob);
    m.set("delay_prob", plan.messages.delay_prob);
    m.set("duplicate_prob", plan.messages.duplicate_prob);
    m.set("delay_s", plan.messages.delay_s);
    m.set("retransmit_timeout_s", plan.messages.retransmit_timeout_s);
    j.set("messages", std::move(m));
  }
  if (plan.ps.any()) {
    JsonValue p = JsonValue::object();
    p.set("timeout_prob", plan.ps.timeout_prob);
    p.set("max_retries", static_cast<double>(plan.ps.max_retries));
    p.set("base_backoff_s", plan.ps.base_backoff_s);
    j.set("ps", std::move(p));
  }
  return j;
}

FaultInjector::FaultInjector(FaultPlan plan, size_t workers)
    : plan_(std::move(plan)), workers_(workers), per_rank_(workers),
      crashes_by_rank_(workers), stragglers_by_rank_(workers) {
  if (workers == 0) throw std::invalid_argument("FaultInjector: zero workers");
  for (const CrashEvent& c : plan_.crashes) {
    if (c.rank >= workers)
      throw std::invalid_argument("FaultInjector: crash rank out of range");
    crashes_by_rank_[c.rank].push_back(c);
  }
  for (auto& list : crashes_by_rank_)
    std::sort(list.begin(), list.end(),
              [](const CrashEvent& a, const CrashEvent& b) {
                return a.at_iteration < b.at_iteration;
              });
  for (const StragglerEvent& s : plan_.stragglers) {
    if (s.rank >= workers)
      throw std::invalid_argument("FaultInjector: straggler rank out of range");
    stragglers_by_rank_[s.rank].push_back(s);
  }
  const Rng root(plan_.seed ^ 0xFA017EC7ULL);
  for (size_t r = 0; r < workers; ++r) per_rank_[r].rng = root.fork(r);
}

bool FaultInjector::active(size_t rank, uint64_t iteration) const {
  for (const CrashEvent& c : crashes_by_rank_[rank])
    if (iteration >= c.at_iteration && iteration < crash_end(c)) return false;
  return true;
}

const CrashEvent* FaultInjector::crash_starting_at(size_t rank,
                                                   uint64_t iteration) const {
  for (const CrashEvent& c : crashes_by_rank_[rank])
    if (c.at_iteration == iteration) return &c;
  return nullptr;
}

std::vector<size_t> FaultInjector::rejoining_at(uint64_t iteration) const {
  std::vector<size_t> out;
  for (size_t r = 0; r < workers_; ++r)
    for (const CrashEvent& c : crashes_by_rank_[r])
      if (c.restart && crash_end(c) == iteration) out.push_back(r);
  return out;
}

std::vector<uint8_t> FaultInjector::active_mask(uint64_t iteration) const {
  std::vector<uint8_t> mask(workers_, 0);
  for (size_t r = 0; r < workers_; ++r)
    mask[r] = active(r, iteration) ? 1 : 0;
  return mask;
}

bool FaultInjector::needs_checkpoints(size_t rank) const {
  for (const CrashEvent& c : crashes_by_rank_[rank])
    if (c.restart) return true;
  return false;
}

double FaultInjector::straggler_factor(size_t rank, uint64_t iteration) const {
  double factor = 1.0;
  for (const StragglerEvent& s : stragglers_by_rank_[rank])
    if (iteration >= s.from_iteration &&
        iteration < s.from_iteration + s.duration_iterations)
      factor = std::max(factor, s.slowdown);
  return factor;
}

const StragglerEvent* FaultInjector::straggler_starting_at(
    size_t rank, uint64_t iteration) const {
  for (const StragglerEvent& s : stragglers_by_rank_[rank])
    if (s.from_iteration == iteration) return &s;
  return nullptr;
}

MessageFate FaultInjector::draw_message_fate(size_t rank) {
  const MessageFaultConfig& m = plan_.messages;
  if (!m.any()) return MessageFate::kDeliver;
  const double u = per_rank_[rank].rng.uniform();
  if (u < m.drop_prob) return MessageFate::kDrop;
  if (u < m.drop_prob + m.delay_prob) return MessageFate::kDelay;
  if (u < m.drop_prob + m.delay_prob + m.duplicate_prob)
    return MessageFate::kDuplicate;
  return MessageFate::kDeliver;
}

size_t FaultInjector::draw_ps_timeouts(size_t rank) {
  if (!plan_.ps.any()) return 0;
  size_t failures = 0;
  while (failures <= plan_.ps.max_retries &&
         per_rank_[rank].rng.bernoulli(plan_.ps.timeout_prob))
    ++failures;
  return failures;
}

double FaultInjector::ps_backoff_s(size_t attempt) const {
  return plan_.ps.base_backoff_s * std::ldexp(1.0, static_cast<int>(attempt));
}

void FaultInjector::add_pending_delay(size_t rank, double seconds) {
  per_rank_[rank].pending_delay_s += seconds;
}

double FaultInjector::take_pending_delay(size_t rank) {
  const double d = per_rank_[rank].pending_delay_s;
  per_rank_[rank].pending_delay_s = 0.0;
  return d;
}

void FaultInjector::set_current_iteration(size_t rank, uint64_t iteration) {
  per_rank_[rank].current_iteration = iteration;
}

uint64_t FaultInjector::current_iteration(size_t rank) const {
  return per_rank_[rank].current_iteration;
}

void FaultInjector::record(size_t rank, FaultKind kind, uint64_t iteration,
                           double detail) {
  PerRank& pr = per_rank_[rank];
  pr.events.push_back({kind, rank, iteration, detail});
  pr.event_order.push_back(pr.next_order++);
}

FaultSummary FaultInjector::summary() const {
  FaultSummary out;
  struct Keyed {
    uint64_t iteration;
    size_t rank;
    uint64_t order;
    const FaultEvent* event;
  };
  std::vector<Keyed> keyed;
  for (size_t r = 0; r < workers_; ++r) {
    const PerRank& pr = per_rank_[r];
    for (size_t i = 0; i < pr.events.size(); ++i)
      keyed.push_back({pr.events[i].iteration, r, pr.event_order[i],
                       &pr.events[i]});
  }
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (a.iteration != b.iteration) return a.iteration < b.iteration;
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.order < b.order;
  });
  out.events.reserve(keyed.size());
  for (const Keyed& k : keyed) out.events.push_back(*k.event);
  for (const FaultEvent& e : out.events) {
    switch (e.kind) {
      case FaultKind::kCrash: ++out.crashes; break;
      case FaultKind::kRestart: ++out.restarts; break;
      case FaultKind::kRecoverySync: ++out.recovery_syncs; break;
      case FaultKind::kCheckpoint: break;
      case FaultKind::kMessageDrop: ++out.messages_dropped; break;
      case FaultKind::kMessageDelay: ++out.messages_delayed; break;
      case FaultKind::kMessageDuplicate: ++out.messages_duplicated; break;
      case FaultKind::kPsTimeout: ++out.ps_timeouts; break;
      case FaultKind::kPsGiveUp: ++out.ps_give_ups; break;
      case FaultKind::kStragglerStart: ++out.straggler_episodes; break;
      case FaultKind::kQuorumLost: ++out.quorum_lost_rounds; break;
    }
  }
  return out;
}

}  // namespace selsync
