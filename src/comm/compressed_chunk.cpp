#include "comm/compressed_chunk.hpp"

#include <stdexcept>

namespace selsync {

ChunkCodec::ChunkCodec(const CompressionConfig& config, size_t workers)
    : config_(config) {
  if (config.kind == CompressionKind::kNone)
    throw std::invalid_argument("ChunkCodec: no codec configured");
  if (config.kind == CompressionKind::kTopK &&
      (config.topk_fraction <= 0.0 || config.topk_fraction > 1.0))
    throw std::invalid_argument("ChunkCodec: topk fraction in (0,1]");
  ranks_.resize(workers);
  for (RankState& state : ranks_) state.effective = config;
}

void ChunkCodec::begin_round(size_t rank, double delta) {
  RankState& state = ranks_.at(rank);
  state.effective = effective_compression(config_, delta);
  state.slot_base = 0;
  state.wire = 0;
  state.dense = 0;
}

void ChunkCodec::set_slot_base(size_t rank, size_t base) {
  ranks_.at(rank).slot_base = base;
}

size_t ChunkCodec::transform(size_t rank, size_t slot,
                             std::span<float> chunk) {
  RankState& state = ranks_.at(rank);
  // The round's effective config decides feedback too: if an adaptive rule
  // ever toggles it per round, residual wiring must follow the codec that
  // actually runs, not the base config.
  std::vector<float>* residual =
      state.effective.error_feedback ? &state.residuals[state.slot_base + slot]
                                     : nullptr;
  return codec_transform(state.effective, chunk, residual);
}

void ChunkCodec::charge(size_t rank, size_t wire, size_t dense) {
  RankState& state = ranks_.at(rank);
  state.wire += wire;
  state.dense += dense;
}

double ChunkCodec::round_ratio(size_t rank) const {
  const RankState& state = ranks_.at(rank);
  if (state.dense == 0) return 1.0;
  return static_cast<double>(state.wire) / static_cast<double>(state.dense);
}

}  // namespace selsync
