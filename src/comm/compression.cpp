#include "comm/compression.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "comm/wire_format.hpp"

namespace selsync {

const char* compression_kind_name(CompressionKind kind) {
  return enum_name(kCompressionKindNames, kind);
}

std::optional<CompressionKind> compression_kind_from_name(
    std::string_view name) {
  return enum_from_name(kCompressionKindNames, name);
}

std::string compression_kind_names() {
  return enum_names(kCompressionKindNames);
}

CompressionConfig effective_compression(const CompressionConfig& config,
                                        double delta) {
  CompressionConfig effective = config;
  if (config.adaptive && config.kind == CompressionKind::kTopK &&
      delta >= config.critical_delta)
    effective.topk_fraction = config.topk_fraction_critical;
  return effective;
}

GradientCompressor::GradientCompressor(CompressionConfig config)
    : config_(config) {
  if (config.kind == CompressionKind::kTopK &&
      (config.topk_fraction <= 0.0 || config.topk_fraction > 1.0))
    throw std::invalid_argument("GradientCompressor: topk fraction in (0,1]");
}

size_t GradientCompressor::wire_bytes(const CompressionConfig& config,
                                      size_t values) {
  // The layout (and therefore the size arithmetic) lives in WireFormat,
  // the one serializer both carriers consume (DESIGN.md §13); delegating
  // keeps the in-proc accounting and the socket transport's actual frames
  // from ever drifting.
  return wire::chunk_wire_bytes(config, values);
}

size_t codec_transform(const CompressionConfig& effective,
                       std::span<float> data, std::vector<float>* residual) {
  if (effective.kind == CompressionKind::kNone || data.empty())
    return data.size() * sizeof(float);

  const bool feedback = effective.error_feedback && residual != nullptr;
  if (feedback) {
    if (residual->size() != data.size()) residual->assign(data.size(), 0.f);
    for (size_t i = 0; i < data.size(); ++i) data[i] += (*residual)[i];
  }

  switch (effective.kind) {
    case CompressionKind::kTopK: {
      const auto k = std::max<size_t>(
          1, static_cast<size_t>(std::ceil(effective.topk_fraction *
                                           static_cast<double>(data.size()))));
      // Threshold = k-th largest magnitude (nth_element on a copy).
      std::vector<float> magnitudes(data.size());
      for (size_t i = 0; i < data.size(); ++i)
        magnitudes[i] = std::fabs(data[i]);
      std::nth_element(magnitudes.begin(),
                       magnitudes.begin() + static_cast<long>(k - 1),
                       magnitudes.end(), std::greater<float>());
      const float threshold = magnitudes[k - 1];
      for (size_t i = 0; i < data.size(); ++i) {
        const float kept = std::fabs(data[i]) >= threshold ? data[i] : 0.f;
        if (feedback) (*residual)[i] = data[i] - kept;
        data[i] = kept;
      }
      break;
    }
    case CompressionKind::kSignSgd: {
      // g -> sign(g) * mean(|g|), the scale-preserving signSGD variant.
      double mean_abs = 0.0;
      for (float g : data) mean_abs += std::fabs(g);
      mean_abs /= std::max<size_t>(data.size(), 1);
      for (size_t i = 0; i < data.size(); ++i) {
        const float kept = data[i] > 0   ? static_cast<float>(mean_abs)
                           : data[i] < 0 ? static_cast<float>(-mean_abs)
                                         : 0.f;
        if (feedback) (*residual)[i] = data[i] - kept;
        data[i] = kept;
      }
      break;
    }
    case CompressionKind::kQuant8: {
      float max_abs = 0.f;
      for (float g : data) max_abs = std::max(max_abs, std::fabs(g));
      const float scale = max_abs > 0 ? max_abs / 127.f : 1.f;
      for (size_t i = 0; i < data.size(); ++i) {
        const float q =
            std::round(data[i] / scale) * scale;  // 8-bit linear levels
        if (feedback) (*residual)[i] = data[i] - q;
        data[i] = q;
      }
      break;
    }
    case CompressionKind::kNone:
      break;
  }

  return GradientCompressor::wire_bytes(effective, data.size());
}

size_t GradientCompressor::compress(std::vector<float>& grad, double delta) {
  if (config_.kind == CompressionKind::kNone || grad.empty()) {
    last_ratio_ = 1.0;
    return grad.size() * sizeof(float);
  }

  const CompressionConfig effective = effective_compression(config_, delta);
  const size_t bytes =
      codec_transform(effective, std::span<float>(grad),
                      config_.error_feedback ? &residual_ : nullptr);
  last_ratio_ = static_cast<double>(bytes) /
                static_cast<double>(grad.size() * sizeof(float));
  return bytes;
}

}  // namespace selsync
