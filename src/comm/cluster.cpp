#include "comm/cluster.hpp"

#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace selsync {

void run_cluster(size_t workers,
                 const std::function<void(WorkerContext&)>& body,
                 const std::function<void()>& on_abort) {
  SharedCollectives collectives(workers);
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::once_flag abort_once;

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t rank = 0; rank < workers; ++rank) {
    threads.emplace_back([&, rank] {
      WorkerContext ctx{rank, workers, &collectives};
      try {
        body(ctx);
      } catch (const BarrierAborted&) {
        // Another worker failed first; unwind quietly.
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        collectives.abort();
        // Release peers blocked outside the barrier too (PS condition
        // waits, channel recv) — without this, a crash injected in one
        // worker while the others sit in the flag allgather's follow-up
        // waits leaves the join below stuck forever.
        if (on_abort) std::call_once(abort_once, on_abort);
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace selsync
