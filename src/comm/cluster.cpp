#include "comm/cluster.hpp"

#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace selsync {

void run_cluster(size_t workers,
                 const std::function<void(WorkerContext&)>& body) {
  SharedCollectives collectives(workers);
  std::exception_ptr first_error;
  std::mutex error_mutex;

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t rank = 0; rank < workers; ++rank) {
    threads.emplace_back([&, rank] {
      WorkerContext ctx{rank, workers, &collectives};
      try {
        body(ctx);
      } catch (const BarrierAborted&) {
        // Another worker failed first; unwind quietly.
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        collectives.abort();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace selsync
