#include "comm/cluster.hpp"

#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "comm/event_loop.hpp"

namespace selsync {

const char* engine_kind_name(EngineKind kind) {
  return enum_name(kEngineKindNames, kind);
}

std::optional<EngineKind> engine_kind_from_name(std::string_view name) {
  return enum_from_name(kEngineKindNames, name);
}

std::string engine_kind_names() { return enum_names(kEngineKindNames); }

namespace {

void run_cluster_threads(size_t workers,
                         const std::function<void(WorkerContext&)>& body,
                         const std::function<void()>& on_abort) {
  SharedCollectives collectives(workers);
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::once_flag abort_once;

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t rank = 0; rank < workers; ++rank) {
    threads.emplace_back([&, rank] {
      WorkerContext ctx{rank, workers, &collectives};
      try {
        body(ctx);
      } catch (const BarrierAborted&) {
        // Another worker failed first; unwind quietly.
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        collectives.abort();
        // Release peers blocked outside the barrier too (PS condition
        // waits, channel recv) — without this, a crash injected in one
        // worker while the others sit in the flag allgather's follow-up
        // waits leaves the join below stuck forever.
        if (on_abort) std::call_once(abort_once, on_abort);
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void run_cluster_des(size_t workers,
                     const std::function<void(WorkerContext&)>& body,
                     const std::function<void()>& on_abort) {
  SharedCollectives collectives(workers);
  std::exception_ptr first_error;
  bool abort_fired = false;

  // Same wrapper as the thread engine, minus the locks: all fibers run on
  // this one thread, so plain variables carry the error and the abort
  // once-flag.
  EventLoop loop(workers);
  for (size_t rank = 0; rank < workers; ++rank) {
    loop.spawn(rank, [&, rank] {
      WorkerContext ctx{rank, workers, &collectives};
      try {
        body(ctx);
      } catch (const BarrierAborted&) {
        // Another worker failed first; unwind quietly.
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
        collectives.abort();
        if (on_abort && !abort_fired) {
          abort_fired = true;
          on_abort();
        }
      }
    });
  }
  loop.run();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

void run_cluster(EngineKind engine, size_t workers,
                 const std::function<void(WorkerContext&)>& body,
                 const std::function<void()>& on_abort) {
  if (engine == EngineKind::kDes)
    run_cluster_des(workers, body, on_abort);
  else
    run_cluster_threads(workers, body, on_abort);
}

void run_cluster(size_t workers,
                 const std::function<void(WorkerContext&)>& body,
                 const std::function<void()>& on_abort) {
  run_cluster(EngineKind::kThreads, workers, body, on_abort);
}

}  // namespace selsync
