// Analytic communication/computation cost model.
//
// The paper's wall-clock numbers come from 16 V100 workers behind a 5 Gbps
// NIC; this repo executes the same algorithms in-process and *charges* each
// operation simulated time from this model instead (DESIGN.md §2). The
// formulas are the standard alpha-beta costs plus three calibration knobs
// that stand in for effects we cannot reproduce mechanically but the paper's
// own measurements imply (Fig. 1a shows ~3x relative throughput for
// ResNet101 at 16 workers, which a naive 5 Gbps incast model cannot yield):
//
//   wire_compression       fp16 gradient/parameter payloads (GradientFlow-
//                          style mixed precision; halves the bytes)
//   server_bandwidth_bps   effective aggregate PS ingest: intra-node workers
//                          (4 GPUs/node) reach the PS via host loopback and
//                          the docker overlay meshes several NICs, so the
//                          server absorbs far more than one 5 Gbps link
//   overlap_factor         fraction of communication NOT hidden behind
//                          backprop (PyTorch overlaps bucketed transfers)
//
// With these, the published *shape* (PS incast saturation in Fig. 1a, the
// speedup ordering of Table I) is reproduced; EXPERIMENTS.md records the
// calibration.
#pragma once

#include <cstddef>
#include <string>

#include "util/enum_names.hpp"

namespace selsync {

/// Which aggregation topology a synchronization round is priced as: a
/// central parameter server (push + pull through one ingest) or a
/// bandwidth-optimal ring allreduce.
enum class Topology { kParameterServer, kRingAllreduce };

/// Wire names used in the run-record serializer (golden records pin the
/// exact spellings); selsync_lint (enum-table) keeps this table in lockstep
/// with the enumerator list above.
inline constexpr EnumEntry<Topology> kTopologyNames[] = {
    {Topology::kParameterServer, "parameter-server"},
    {Topology::kRingAllreduce, "ring-allreduce"},
};

const char* topology_name(Topology topology);

struct NetworkProfile {
  std::string name;
  double bandwidth_bps = 5e9;          // one worker NIC
  double server_bandwidth_bps = 40e9;  // effective PS aggregate ingest
  double latency_s = 200e-6;
  double op_overhead_s = 1e-3;  // serialization / RPC dispatch per op
  double wire_compression = 0.5;  // fp16 payloads
  double overlap_factor = 1.0;    // 1 = no comm/compute overlap
};

/// The paper's testbed: 5 Gbps NIC between docker-swarm containers,
/// 4 V100 per physical node, fp16 wire payloads.
NetworkProfile paper_network_5gbps();
/// A faster datacenter profile for ablations.
NetworkProfile network_25gbps();

class CostModel {
 public:
  explicit CostModel(NetworkProfile net) : net_(net) {}

  const NetworkProfile& network() const { return net_; }

  /// Full PS round trip: every worker pushes `bytes` and pulls `bytes`;
  /// the server ingest serializes all 2N transfers.
  double ps_sync_time(size_t bytes, size_t workers) const;

  /// Sharded PS round trip: the payload splits into `shards` contiguous
  /// ranges, each with its own ingest link, and the round completes when
  /// the busiest shard does — the ceil(bytes / shards) range through one
  /// ps_sync_time schedule. shards == 1 is exactly ps_sync_time (golden
  /// parity); K > 1 divides the transfer term while latency and dispatch
  /// overhead stay per-round, which is why the Fig. 1a knee flattens but
  /// never vanishes.
  double ps_shard_sync_time(size_t bytes, size_t workers,
                            size_t shards) const;

  /// One-way PS transfer (SSP's asynchronous update), contended by `active`
  /// concurrent transfers on the server ingest.
  double ps_oneway_time(size_t bytes, size_t active) const;

  double ring_allreduce_time(size_t bytes, size_t workers) const;
  double tree_allreduce_time(size_t bytes, size_t workers) const;

  /// SelSync's 1-bit-per-worker flag allgather (Alg. 1 line 12). Latency
  /// bound; the paper measured 2-4 ms.
  double flag_allgather_time(size_t workers) const;

  /// Point-to-point transfer (data injection), full fidelity payload.
  double p2p_time(size_t bytes) const;

 private:
  double wire_bytes(double bytes) const { return bytes * net_.wire_compression; }
  NetworkProfile net_;
};

}  // namespace selsync
