// Discrete-event network simulation with max-min fair bandwidth sharing.
//
// The closed-form CostModel prices each collective with alpha-beta formulas;
// this simulator derives the same quantities from first principles: flows
// traverse their source and destination NICs, concurrent flows share link
// capacity max-min fairly, and the event loop advances from one flow
// completion to the next. Unit tests check the two models agree, which is
// the evidence the analytic charges used throughout the trainer are sound.
#pragma once

#include <cstddef>
#include <vector>

namespace selsync {

/// A network of nodes, each behind one full-duplex NIC of fixed capacity.
/// Flows consume capacity on the sender's egress and the receiver's ingress;
/// rates are assigned by progressive filling (max-min fairness), recomputed
/// whenever a flow starts or finishes.
class NetworkSimulator {
 public:
  /// `nic_bandwidth_bps[i]` is node i's NIC capacity (each direction).
  NetworkSimulator(std::vector<double> nic_bandwidth_bps, double latency_s);

  /// Schedules `bytes` from `src` to `dst` starting at `start_time_s`.
  /// Returns a flow id.
  size_t submit(size_t src, size_t dst, double bytes, double start_time_s);

  /// Runs to completion of all submitted flows; afterwards,
  /// completion_time(id) is valid. Returns the makespan (latest completion).
  double run();

  double completion_time(size_t flow_id) const;
  size_t node_count() const { return egress_bw_.size(); }

  /// Resets all flows (topology kept) so the instance can be reused.
  void clear();

 private:
  struct Flow {
    size_t src, dst;
    double bytes_remaining;
    double start_time;
    double completion = -1.0;
    bool active = false;
    bool done = false;
    double rate = 0.0;
  };

  /// Progressive-filling max-min allocation over the active flows.
  void assign_rates(std::vector<Flow*>& active);

  std::vector<double> egress_bw_;
  std::vector<double> ingress_bw_;
  double latency_s_;
  std::vector<Flow> flows_;
};

/// Convenience drivers mirroring the CostModel's collectives. All return
/// makespans in seconds for payloads of `bytes` per worker.

/// N workers push `bytes` to the server, then pull `bytes` back (pulls start
/// only after every push landed, like a blocking aggregation round).
double des_ps_sync_time(size_t workers, double bytes, double worker_bw_bps,
                        double server_bw_bps, double latency_s);

/// Ring allreduce: 2*(N-1) rounds; in each round every node sends one
/// `bytes/N` chunk to its successor (all transfers of a round concurrent).
double des_ring_allreduce_time(size_t workers, double bytes, double bw_bps,
                               double latency_s);

}  // namespace selsync
