// Virtual-time discrete-event execution engine for the cluster (DESIGN.md
// §11).
//
// The thread cluster runs one OS thread per worker; at N=128+ the host
// scheduler, not the StepTimeModel/SyncCost pipeline, dominates wall-clock.
// EventLoop replaces the threads with cooperatively-scheduled fibers on ONE
// host thread: each worker body runs unchanged (the same WorkerLoop stages,
// the same CommBackend), but every blocking point parks the fiber on a
// DesWaitQueue instead of a condition variable, and the scheduler always
// resumes the runnable fiber with the smallest
//
//   (virtual time, rank, spawn/wake sequence)
//
// key — a total order (sequence numbers are unique), so a DES run is a pure
// function of the job. Virtual time is the worker's own simulated clock
// (StepTimeModel compute + SyncCost rounds), published at stage boundaries
// via des_yield()/des_tick(); the engine never invents time of its own.
//
// This core is thread-free by construction — no std::thread, no locks, no
// atomics — and tools/selsync_lint (rule `des-thread-free`) keeps it that
// way. The only concession to the thread world is the thread_local current()
// pointer, which is what lets WaitSlot (wait_slot.hpp) route the same
// primitive to a condition variable on real threads and to park()/wake()
// here, without the callers (channel, barrier, PsRound, the PS staleness
// gate, the rejoin rendezvous) knowing which engine is driving them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include <ucontext.h>

namespace selsync {

/// One pending "resume this task" event. `seq` breaks (vtime, rank) ties and
/// is unique per push, so the ready order is a strict total order.
struct DesEvent {
  double vtime = 0.0;
  size_t rank = 0;
  uint64_t seq = 0;
  size_t task = 0;

  friend bool operator<(const DesEvent& a, const DesEvent& b) {
    if (a.vtime != b.vtime) return a.vtime < b.vtime;
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.seq < b.seq;
  }
  friend bool operator>(const DesEvent& a, const DesEvent& b) { return b < a; }
};

/// The scheduler's ready queue: a binary min-heap on (vtime, rank, seq).
/// Public (rather than an EventLoop internal) so bench/micro_ops can price
/// push/pop on its own — the per-event cost is what bounds how far past
/// N=1024 the engine can sweep.
class DesReadyQueue {
 public:
  void push(const DesEvent& event) { heap_.push(event); }

  /// Removes and returns the earliest event; undefined when empty().
  DesEvent pop() {
    DesEvent event = heap_.top();
    heap_.pop();
    return event;
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

 private:
  std::priority_queue<DesEvent, std::vector<DesEvent>,
                      std::greater<DesEvent>>
      heap_;
};

/// A parking lot for fibers blocked on one condition (one per WaitSlot).
/// Holds task indices in park order; wake order is park order, made
/// deterministic by the ready queue's (vtime, rank, seq) sort anyway.
struct DesWaitQueue {
  std::vector<size_t> parked;
};

/// The discrete-event scheduler: spawn() one fiber per rank, then run()
/// drives them to completion in virtual-time order on the calling thread.
class EventLoop {
 public:
  /// 256 KiB per fiber comfortably holds a WorkerLoop frame (tensors live
  /// on the heap); at N=1024 that is 256 MiB of mostly-untouched mappings.
  static constexpr size_t kStackBytes = 256 * 1024;

  explicit EventLoop(size_t expected_tasks = 0);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers a fiber for `rank` running `body`. The body must not throw —
  /// wrap it (run_cluster does) — but as a last resort an escaping exception
  /// is captured and rethrown by run(). Call before run().
  void spawn(size_t rank, std::function<void()> body);

  /// Runs every spawned fiber to completion. Throws std::runtime_error if
  /// the system stalls (every live fiber parked, nothing ready — a lost
  /// wakeup or deadlocked protocol), naming the stuck ranks.
  void run();

  /// The loop driving the calling thread, or nullptr when the caller runs
  /// on a real thread. This is the engine dispatch point WaitSlot and the
  /// des_*() helpers branch on.
  static EventLoop* current();

  // -- fiber-side API (valid only while run() executes the caller) ----------

  /// Parks the running fiber on `queue` until wake_one/wake_all. The caller
  /// must not hold any lock that a peer needs in order to wake it (WaitSlot
  /// drops its lock before parking and re-acquires after).
  void park(DesWaitQueue& queue);

  /// Moves every fiber parked on `queue` to the ready heap at the waker's
  /// virtual time (clocks are monotone: a woken fiber never runs before the
  /// event that woke it).
  void wake_all(DesWaitQueue& queue);

  /// Moves the longest-parked fiber on `queue` to the ready heap.
  void wake_one(DesWaitQueue& queue);

  /// Advances the running fiber's virtual clock to `vtime` (monotone max;
  /// a stale lower value is ignored). No reschedule.
  void advance_clock(double vtime);

  /// advance_clock(vtime), then yields to the scheduler: the globally
  /// earliest runnable fiber — possibly this one again — runs next. Workers
  /// call this at iteration boundaries so interleaving follows the cost
  /// model's virtual time, not code layout.
  void yield_current(double vtime);

  /// The running fiber's rank / virtual clock.
  size_t current_rank() const;
  double current_vtime() const;

  /// Scheduling telemetry (bench/micro_ops, tests).
  uint64_t switches() const { return switches_; }
  uint64_t events() const { return events_; }

 private:
  enum class TaskState { kReady, kRunning, kParked, kDone };

  struct Task {
    size_t rank = 0;
    double vtime = 0.0;
    TaskState state = TaskState::kReady;
    std::function<void()> body;
    std::unique_ptr<char[]> stack;
    bool prepared = false;
    ucontext_t context;
    /// AddressSanitizer's per-fiber fake-stack handle (nullptr = none yet).
    void* asan_fake_stack = nullptr;
  };

  static void trampoline();
  void enter_fiber(Task& task);
  void leave_fiber(Task& task, bool final_exit);
  void make_ready(Task& task, size_t index, double vtime);
  [[noreturn]] void stalled();

  std::vector<std::unique_ptr<Task>> tasks_;
  DesReadyQueue ready_;
  Task* running_ = nullptr;
  size_t running_index_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t switches_ = 0;
  uint64_t events_ = 0;
  size_t live_ = 0;
  ucontext_t scheduler_context_;
  /// Captured exception from a fiber whose body threw past its own wrapper.
  std::exception_ptr first_error_;
  /// ASan bookkeeping: the host thread's stack (learned on first fiber
  /// entry) and the scheduler's fake-stack handle.
  const void* host_stack_bottom_ = nullptr;
  size_t host_stack_size_ = 0;
  void* scheduler_fake_stack_ = nullptr;
};

/// True when the calling code is running on a DES fiber.
inline bool des_active() { return EventLoop::current() != nullptr; }

/// Publish the worker's simulated clock and yield at an event boundary.
/// No-op on real threads, so WorkerLoop can call it unconditionally.
inline void des_yield(double vtime) {
  if (EventLoop* loop = EventLoop::current()) loop->yield_current(vtime);
}

/// Publish the worker's simulated clock without yielding. No-op on threads.
inline void des_tick(double vtime) {
  if (EventLoop* loop = EventLoop::current()) loop->advance_clock(vtime);
}

}  // namespace selsync
