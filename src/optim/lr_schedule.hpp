// Learning-rate schedules used in the paper's training recipes (§IV-A):
// step decay at fixed epochs (ResNet101, VGG11), a constant rate (AlexNet),
// and per-iteration exponential decay (Transformer: x0.8 every 2000 steps).
#pragma once

#include <cmath>
#include <cstddef>
#include <memory>
#include <vector>

namespace selsync {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  /// Learning rate for the given global step/epoch position.
  virtual double lr_at(size_t iteration, double epoch) const = 0;
};

class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(double lr) : lr_(lr) {}
  double lr_at(size_t, double) const override { return lr_; }

 private:
  double lr_;
};

/// Multiplies the base rate by `factor` once each listed epoch is passed.
class EpochStepDecay : public LrSchedule {
 public:
  EpochStepDecay(double base_lr, std::vector<double> decay_epochs,
                 double factor)
      : base_lr_(base_lr),
        decay_epochs_(std::move(decay_epochs)),
        factor_(factor) {}

  double lr_at(size_t, double epoch) const override {
    double lr = base_lr_;
    for (double e : decay_epochs_)
      if (epoch >= e) lr *= factor_;
    return lr;
  }

 private:
  double base_lr_;
  std::vector<double> decay_epochs_;
  double factor_;
};

/// Multiplies the base rate by `factor` every `interval` iterations.
class IterationExpDecay : public LrSchedule {
 public:
  IterationExpDecay(double base_lr, size_t interval, double factor)
      : base_lr_(base_lr), interval_(interval), factor_(factor) {}

  double lr_at(size_t iteration, double) const override {
    double lr = base_lr_;
    for (size_t k = interval_; k <= iteration; k += interval_) lr *= factor_;
    return lr;
  }

 private:
  double base_lr_;
  size_t interval_;
  double factor_;
};

/// Cosine annealing from `base_lr` down to `min_lr` over `total_steps`
/// iterations (constant at min_lr afterwards).
class CosineAnnealing : public LrSchedule {
 public:
  CosineAnnealing(double base_lr, size_t total_steps, double min_lr = 0.0)
      : base_lr_(base_lr), total_steps_(total_steps), min_lr_(min_lr) {}

  double lr_at(size_t iteration, double) const override {
    if (total_steps_ == 0 || iteration >= total_steps_) return min_lr_;
    const double progress =
        static_cast<double>(iteration) / static_cast<double>(total_steps_);
    return min_lr_ + 0.5 * (base_lr_ - min_lr_) *
                         (1.0 + std::cos(progress * 3.14159265358979323846));
  }

 private:
  double base_lr_;
  size_t total_steps_;
  double min_lr_;
};

/// Linear warmup wrapped around any base schedule: the rate ramps from
/// base/warmup_steps to the base schedule's value over the first
/// `warmup_steps` iterations (standard practice for large global batches,
/// the regime N-worker BSP puts a model in).
class LinearWarmup : public LrSchedule {
 public:
  LinearWarmup(std::shared_ptr<const LrSchedule> base, size_t warmup_steps)
      : base_(std::move(base)), warmup_steps_(warmup_steps) {}

  double lr_at(size_t iteration, double epoch) const override {
    const double base_lr = base_->lr_at(iteration, epoch);
    if (warmup_steps_ == 0 || iteration >= warmup_steps_) return base_lr;
    return base_lr * static_cast<double>(iteration + 1) /
           static_cast<double>(warmup_steps_);
  }

 private:
  std::shared_ptr<const LrSchedule> base_;
  size_t warmup_steps_;
};

using LrSchedulePtr = std::shared_ptr<const LrSchedule>;

}  // namespace selsync
