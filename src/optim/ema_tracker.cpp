#include "optim/ema_tracker.hpp"

#include <stdexcept>
#include <utility>

namespace selsync {

EmaTracker::EmaTracker(double decay) : decay_(decay) {
  if (decay < 0.0 || decay >= 1.0)
    throw std::invalid_argument("EmaTracker: decay in [0, 1)");
}

void EmaTracker::update(Model& model) {
  const std::vector<float> current = model.get_flat_params();
  if (average_.empty()) {
    average_ = current;
    return;
  }
  if (average_.size() != current.size())
    throw std::invalid_argument("EmaTracker: model changed size");
  const float d = static_cast<float>(decay_);
  for (size_t i = 0; i < average_.size(); ++i)
    average_[i] = d * average_[i] + (1.f - d) * current[i];
}

const std::vector<float>& EmaTracker::average() const {
  if (average_.empty())
    throw std::logic_error("EmaTracker: no updates recorded");
  return average_;
}

void EmaTracker::swap_into(Model& model) {
  if (average_.empty())
    throw std::logic_error("EmaTracker: no updates recorded");
  std::vector<float> current = model.get_flat_params();
  model.set_flat_params(average_);
  average_ = std::move(current);
}

}  // namespace selsync
