// Optimizers. Each worker replica owns one optimizer instance; its state
// (momentum / Adam moments) is local and is *not* synchronized, matching the
// paper's implementation where only gradients or parameters are exchanged.
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "nn/module.hpp"
#include "optim/lr_schedule.hpp"

namespace selsync {

/// Scales all gradients so the global L2 norm does not exceed `max_norm`
/// (the paper §II-E lists gradient clipping among the hyperparameters that
/// shape gradient sensitivity). Returns the pre-clip norm.
double clip_grad_norm(const std::vector<Param*>& params, double max_norm);

class Optimizer {
 public:
  explicit Optimizer(LrSchedulePtr schedule) : schedule_(std::move(schedule)) {}
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently stored in `params`.
  /// `iteration`/`epoch` feed the learning-rate schedule.
  void step(const std::vector<Param*>& params, size_t iteration, double epoch);

  double current_lr(size_t iteration, double epoch) const {
    return schedule_->lr_at(iteration, epoch);
  }

  /// Serializes the optimizer's mutable state (momenta etc.) for
  /// checkpointing; the schedule and hyperparameters are reconstructed by
  /// the factory, not stored. Base implementation stores nothing.
  virtual void save_state(std::ostream& out) const;
  virtual void load_state(std::istream& in);

 protected:
  virtual void apply(const std::vector<Param*>& params, double lr) = 0;

 private:
  LrSchedulePtr schedule_;
};

struct SgdOptions {
  double momentum = 0.0;
  double weight_decay = 0.0;
  bool nesterov = false;
};

class Sgd : public Optimizer {
 public:
  Sgd(LrSchedulePtr schedule, SgdOptions options = {});

  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

 protected:
  void apply(const std::vector<Param*>& params, double lr) override;

 private:
  SgdOptions options_;
  std::vector<std::vector<float>> velocity_;  // lazily sized per param
};

struct AdamOptions {
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.0;
};

class Adam : public Optimizer {
 public:
  Adam(LrSchedulePtr schedule, AdamOptions options = {});

  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

 protected:
  void apply(const std::vector<Param*>& params, double lr) override;

 private:
  AdamOptions options_;
  size_t t_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

}  // namespace selsync
