#include "optim/optimizer.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace selsync {

namespace {

void write_u64(std::ostream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

uint64_t read_u64(std::istream& in) {
  uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("optimizer state: truncated stream");
  return v;
}

void write_floats(std::ostream& out, const std::vector<float>& v) {
  write_u64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
}

std::vector<float> read_floats(std::istream& in) {
  std::vector<float> v(read_u64(in));
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(float)));
  if (!in) throw std::runtime_error("optimizer state: truncated stream");
  return v;
}

void write_nested(std::ostream& out,
                  const std::vector<std::vector<float>>& vv) {
  write_u64(out, vv.size());
  for (const auto& v : vv) write_floats(out, v);
}

std::vector<std::vector<float>> read_nested(std::istream& in) {
  std::vector<std::vector<float>> vv(read_u64(in));
  for (auto& v : vv) v = read_floats(in);
  return vv;
}

}  // namespace

double clip_grad_norm(const std::vector<Param*>& params, double max_norm) {
  if (max_norm <= 0) throw std::invalid_argument("clip_grad_norm: max <= 0");
  double sq = 0.0;
  for (const Param* p : params) sq += p->grad.sq_norm();
  const double norm = std::sqrt(sq);
  if (norm > max_norm) {
    const float scale = static_cast<float>(max_norm / norm);
    for (Param* p : params) p->grad.scale_(scale);
  }
  return norm;
}

void Optimizer::save_state(std::ostream& out) const { (void)out; }
void Optimizer::load_state(std::istream& in) { (void)in; }

void Optimizer::step(const std::vector<Param*>& params, size_t iteration,
                     double epoch) {
  apply(params, schedule_->lr_at(iteration, epoch));
}

Sgd::Sgd(LrSchedulePtr schedule, SgdOptions options)
    : Optimizer(std::move(schedule)), options_(options) {}

void Sgd::apply(const std::vector<Param*>& params, double lr) {
  if (velocity_.size() != params.size()) {
    velocity_.resize(params.size());
    for (size_t i = 0; i < params.size(); ++i)
      velocity_[i].assign(params[i]->value.size(), 0.f);
  }
  const float flr = static_cast<float>(lr);
  const float mu = static_cast<float>(options_.momentum);
  const float wd = static_cast<float>(options_.weight_decay);
  for (size_t i = 0; i < params.size(); ++i) {
    Param& p = *params[i];
    auto& vel = velocity_[i];
    float* w = p.value.data();
    const float* g = p.grad.data();
    for (size_t j = 0; j < p.value.size(); ++j) {
      float grad = g[j] + wd * w[j];
      if (mu != 0.f) {
        vel[j] = mu * vel[j] + grad;
        grad = options_.nesterov ? grad + mu * vel[j] : vel[j];
      }
      w[j] -= flr * grad;
    }
  }
}

void Sgd::save_state(std::ostream& out) const { write_nested(out, velocity_); }
void Sgd::load_state(std::istream& in) { velocity_ = read_nested(in); }

Adam::Adam(LrSchedulePtr schedule, AdamOptions options)
    : Optimizer(std::move(schedule)), options_(options) {}

void Adam::save_state(std::ostream& out) const {
  write_u64(out, t_);
  write_nested(out, m_);
  write_nested(out, v_);
}

void Adam::load_state(std::istream& in) {
  t_ = read_u64(in);
  m_ = read_nested(in);
  v_ = read_nested(in);
}

void Adam::apply(const std::vector<Param*>& params, double lr) {
  if (m_.size() != params.size()) {
    m_.resize(params.size());
    v_.resize(params.size());
    for (size_t i = 0; i < params.size(); ++i) {
      m_[i].assign(params[i]->value.size(), 0.f);
      v_[i].assign(params[i]->value.size(), 0.f);
    }
  }
  ++t_;
  const double b1 = options_.beta1, b2 = options_.beta2;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  const double step_size = lr / bias1;
  const float wd = static_cast<float>(options_.weight_decay);
  for (size_t i = 0; i < params.size(); ++i) {
    Param& p = *params[i];
    auto& m = m_[i];
    auto& v = v_[i];
    float* w = p.value.data();
    const float* g = p.grad.data();
    for (size_t j = 0; j < p.value.size(); ++j) {
      const float grad = g[j] + wd * w[j];
      m[j] = static_cast<float>(b1 * m[j] + (1.0 - b1) * grad);
      v[j] = static_cast<float>(b2 * v[j] + (1.0 - b2) * grad * grad);
      const double vhat = v[j] / bias2;
      w[j] -= static_cast<float>(step_size * m[j] /
                                 (std::sqrt(vhat) + options_.eps));
    }
  }
}

}  // namespace selsync
