// Polyak/exponential moving averaging of model parameters.
//
// Semi-synchronous methods trade per-step noise for communication savings;
// evaluating an EMA of the weights recovers much of the lost smoothness for
// free. The tracker lives outside the exchanged payload (like optimizer
// state), so it composes with every strategy.
#pragma once

#include <vector>

#include "nn/model.hpp"

namespace selsync {

class EmaTracker {
 public:
  /// `decay` in [0, 1): the averaged weights move (1 - decay) of the way to
  /// the current weights on each update. 0.99-0.999 is typical.
  explicit EmaTracker(double decay);

  /// Folds the model's current parameters into the average (the first call
  /// initializes the average to them).
  void update(Model& model);

  bool initialized() const { return !average_.empty(); }
  const std::vector<float>& average() const;

  /// Swaps the model's parameters with the tracked average (call again to
  /// restore — the RAII helper below automates this).
  void swap_into(Model& model);

 private:
  double decay_;
  std::vector<float> average_;
};

/// Scope guard: evaluates with the EMA weights, restores on destruction.
class EmaEvalScope {
 public:
  EmaEvalScope(EmaTracker& tracker, Model& model)
      : tracker_(tracker), model_(model) {
    tracker_.swap_into(model_);
  }
  ~EmaEvalScope() { tracker_.swap_into(model_); }
  EmaEvalScope(const EmaEvalScope&) = delete;
  EmaEvalScope& operator=(const EmaEvalScope&) = delete;

 private:
  EmaTracker& tracker_;
  Model& model_;
};

}  // namespace selsync
