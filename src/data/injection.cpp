#include "data/injection.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace selsync {

size_t injection_adjusted_batch(size_t batch, double alpha, double beta,
                                size_t cluster_size) {
  const double denom = 1.0 + alpha * beta * static_cast<double>(cluster_size);
  const auto b = static_cast<size_t>(
      std::lround(static_cast<double>(batch) / denom));
  return b == 0 ? 1 : b;
}

DataInjector::DataInjector(InjectionConfig config, size_t cluster_size)
    : config_(config), cluster_size_(cluster_size) {
  if (config.alpha < 0.0 || config.alpha > 1.0 || config.beta < 0.0 ||
      config.beta > 1.0)
    throw std::invalid_argument("DataInjector: alpha/beta in [0,1]");
  if (cluster_size == 0)
    throw std::invalid_argument("DataInjector: empty cluster");
  donor_count_ = static_cast<size_t>(
      std::ceil(config.alpha * static_cast<double>(cluster_size)));
}

InjectionRound DataInjector::run(
    uint64_t iteration, const std::vector<std::vector<size_t>>& proposed,
    size_t sample_bytes) const {
  if (proposed.size() != cluster_size_)
    throw std::invalid_argument("DataInjector: proposal count mismatch");

  InjectionRound round;
  if (donor_count_ == 0 || config_.beta == 0.0) return round;

  // Deterministic per-iteration donor pick, identical on every worker.
  Rng rng(config_.seed ^ (iteration * 0x9E3779B97F4A7C15ULL + 1));
  round.donors = rng.sample_without_replacement(cluster_size_, donor_count_);

  for (size_t donor : round.donors) {
    const auto& batch = proposed[donor];
    const auto share = static_cast<size_t>(
        std::lround(config_.beta * static_cast<double>(batch.size())));
    for (size_t i = 0; i < share && i < batch.size(); ++i)
      round.pool.push_back(batch[i]);
  }
  round.bytes_transferred = round.pool.size() * sample_bytes;
  return round;
}

}  // namespace selsync
