#include "data/partition.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace selsync {

namespace {

/// One global shuffle split into `workers` near-equal contiguous chunks.
std::vector<std::vector<size_t>> shuffled_chunks(size_t n, size_t workers,
                                                 uint64_t seed) {
  if (workers == 0) throw std::invalid_argument("partition: zero workers");
  if (n < workers)
    throw std::invalid_argument("partition: fewer samples than workers");
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  Rng rng(seed);
  rng.shuffle(all);

  std::vector<std::vector<size_t>> chunks(workers);
  const size_t base = n / workers;
  const size_t extra = n % workers;
  size_t pos = 0;
  for (size_t w = 0; w < workers; ++w) {
    const size_t len = base + (w < extra ? 1 : 0);
    chunks[w].assign(all.begin() + pos, all.begin() + pos + len);
    pos += len;
  }
  return chunks;
}

}  // namespace

const char* partition_scheme_name(PartitionScheme scheme) {
  return enum_name(kPartitionSchemeNames, scheme);
}

Partition partition_default(size_t n, size_t workers, uint64_t seed) {
  Partition p;
  p.worker_order = shuffled_chunks(n, workers, seed);
  return p;
}

Partition partition_selsync(size_t n, size_t workers, uint64_t seed) {
  const auto chunks = shuffled_chunks(n, workers, seed);
  Partition p;
  p.worker_order.resize(workers);
  for (size_t w = 0; w < workers; ++w) {
    auto& order = p.worker_order[w];
    order.reserve(n);
    // Circular queue: worker w starts at its own chunk and wraps.
    for (size_t j = 0; j < workers; ++j) {
      const auto& chunk = chunks[(w + j) % workers];
      order.insert(order.end(), chunk.begin(), chunk.end());
    }
  }
  return p;
}

Partition partition_noniid_by_label(const Dataset& dataset, size_t workers,
                                    size_t labels_per_worker, uint64_t seed) {
  const size_t num_labels = dataset.num_classes();
  if (num_labels == 0)
    throw std::invalid_argument("non-IID partition: dataset has no labels");
  if (labels_per_worker == 0)
    throw std::invalid_argument("non-IID partition: zero labels per worker");

  // Group sample indices by label.
  std::vector<std::vector<size_t>> by_label(num_labels);
  for (size_t i = 0; i < dataset.size(); ++i)
    by_label[static_cast<size_t>(dataset.label_of(i))].push_back(i);

  // Deal labels to workers round-robin (shuffled), wrapping if the workers
  // jointly need more label slots than exist (labels are then shared).
  std::vector<size_t> label_ids(num_labels);
  for (size_t l = 0; l < num_labels; ++l) label_ids[l] = l;
  Rng rng(seed);
  rng.shuffle(label_ids);

  Partition p;
  p.worker_order.resize(workers);
  size_t slot = 0;
  for (size_t w = 0; w < workers; ++w) {
    auto& order = p.worker_order[w];
    for (size_t k = 0; k < labels_per_worker; ++k, ++slot) {
      const auto& members = by_label[label_ids[slot % num_labels]];
      order.insert(order.end(), members.begin(), members.end());
    }
    rng.shuffle(order);
    if (order.empty())
      throw std::runtime_error("non-IID partition: worker got no samples");
  }
  return p;
}

Partition make_partition(PartitionScheme scheme, const Dataset& dataset,
                         size_t workers, size_t labels_per_worker,
                         uint64_t seed) {
  switch (scheme) {
    case PartitionScheme::kDefault:
      return partition_default(dataset.size(), workers, seed);
    case PartitionScheme::kSelSync:
      return partition_selsync(dataset.size(), workers, seed);
    case PartitionScheme::kNonIidLabel:
      return partition_noniid_by_label(dataset, workers, labels_per_worker,
                                       seed);
  }
  throw std::invalid_argument("make_partition: unknown scheme");
}

ShardLoader::ShardLoader(DatasetPtr dataset, std::vector<size_t> order,
                         size_t batch_size)
    : dataset_(std::move(dataset)),
      order_(std::move(order)),
      batch_size_(batch_size) {
  if (!dataset_) throw std::invalid_argument("ShardLoader: null dataset");
  if (order_.empty()) throw std::invalid_argument("ShardLoader: empty order");
  if (batch_size_ == 0) throw std::invalid_argument("ShardLoader: batch 0");
}

const std::vector<size_t>& ShardLoader::next_indices() {
  scratch_.clear();
  for (size_t i = 0; i < batch_size_; ++i) {
    scratch_.push_back(order_[cursor_]);
    cursor_ = (cursor_ + 1) % order_.size();
  }
  consumed_ += batch_size_;
  return scratch_;
}

Batch ShardLoader::next_batch() { return dataset_->make_batch(next_indices()); }

void ShardLoader::restore_position(size_t cursor, size_t consumed) {
  if (cursor >= order_.size())
    throw std::invalid_argument("ShardLoader: cursor out of range");
  cursor_ = cursor;
  consumed_ = consumed;
}

void ShardLoader::set_batch_size(size_t b) {
  if (b == 0) throw std::invalid_argument("ShardLoader: batch 0");
  batch_size_ = b;
}

}  // namespace selsync
