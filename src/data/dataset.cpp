#include "data/dataset.hpp"

#include <cstring>
#include <stdexcept>

namespace selsync {

ClassificationDataset::ClassificationDataset(std::vector<float> features,
                                             size_t feature_dim,
                                             std::vector<int> labels,
                                             size_t num_classes,
                                             std::vector<size_t> image_shape)
    : features_(std::move(features)),
      feature_dim_(feature_dim),
      labels_(std::move(labels)),
      num_classes_(num_classes),
      image_shape_(std::move(image_shape)) {
  if (features_.size() != labels_.size() * feature_dim_)
    throw std::invalid_argument("ClassificationDataset: feature size");
  if (!image_shape_.empty()) {
    if (image_shape_.size() != 3)
      throw std::invalid_argument("ClassificationDataset: image shape rank");
    if (image_shape_[0] * image_shape_[1] * image_shape_[2] != feature_dim_)
      throw std::invalid_argument(
          "ClassificationDataset: image shape does not match feature dim");
  }
}

Batch ClassificationDataset::make_batch(
    const std::vector<size_t>& indices) const {
  const size_t b = indices.size();
  Batch batch;
  std::vector<size_t> shape =
      image_shape_.empty()
          ? std::vector<size_t>{b, feature_dim_}
          : std::vector<size_t>{b, image_shape_[0], image_shape_[1],
                                image_shape_[2]};
  batch.x = Tensor(std::move(shape));
  batch.targets.resize(b);
  for (size_t i = 0; i < b; ++i) {
    const size_t src = indices[i];
    if (src >= size()) throw std::out_of_range("make_batch: index");
    std::memcpy(batch.x.data() + i * feature_dim_,
                features_.data() + src * feature_dim_,
                feature_dim_ * sizeof(float));
    batch.targets[i] = labels_[src];
  }
  return batch;
}

SequenceDataset::SequenceDataset(std::vector<int> tokens, size_t vocab,
                                 size_t seq_len)
    : tokens_(std::move(tokens)), vocab_(vocab), seq_len_(seq_len) {
  if (tokens_.size() < seq_len_ + 1)
    throw std::invalid_argument("SequenceDataset: stream too short");
  windows_ = (tokens_.size() - 1) / seq_len_;
}

Batch SequenceDataset::make_batch(const std::vector<size_t>& indices) const {
  Batch batch;
  batch.tokens.reserve(indices.size() * seq_len_);
  batch.targets.reserve(indices.size() * seq_len_);
  for (size_t w : indices) {
    if (w >= windows_) throw std::out_of_range("make_batch: window index");
    const size_t start = w * seq_len_;
    for (size_t t = 0; t < seq_len_; ++t) {
      batch.tokens.push_back(tokens_[start + t]);
      batch.targets.push_back(tokens_[start + t + 1]);
    }
  }
  return batch;
}

}  // namespace selsync
