// Randomized data-injection for non-IID training (paper §III-E).
//
// Each iteration, a random α-fraction of workers donates a β-fraction of its
// mini-batch to a shared pool that every worker appends to its own batch.
// To keep the effective batch at the originally configured b, the local
// batch shrinks to b' = b / (1 + αβN) (Eqn. 3). Donor selection uses a seed
// shared by all workers (derived from the iteration number) so the choice is
// consistent cluster-wide without extra coordination traffic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace selsync {

struct InjectionConfig {
  double alpha = 0.5;  // fraction of workers donating
  double beta = 0.5;   // fraction of the donor batch donated
  uint64_t seed = 101;
};

/// Eqn. 3: b' = b / (1 + alpha*beta*N), rounded to at least 1.
size_t injection_adjusted_batch(size_t batch, double alpha, double beta,
                                size_t cluster_size);

/// Outcome of one injection round.
struct InjectionRound {
  std::vector<size_t> donors;  // worker ranks selected this iteration
  std::vector<size_t> pool;    // donated sample indices (global ids)
  size_t bytes_transferred = 0;
};

class DataInjector {
 public:
  DataInjector(InjectionConfig config, size_t cluster_size);

  /// Runs one round: picks ceil(alpha*N) donors from a per-iteration seed and
  /// takes the first round(beta*|batch|) indices of each donor's proposed
  /// batch. `proposed[w]` is worker w's local mini-batch (b' indices).
  InjectionRound run(uint64_t iteration,
                     const std::vector<std::vector<size_t>>& proposed,
                     size_t sample_bytes) const;

  size_t donor_count() const { return donor_count_; }
  const InjectionConfig& config() const { return config_; }

 private:
  InjectionConfig config_;
  size_t cluster_size_;
  size_t donor_count_;
};

}  // namespace selsync
