// Data partitioning schemes (paper §III-D, Fig. 7).
//
// A partitioner maps a dataset onto per-worker *ordered index streams*; the
// shard loader then walks each stream cyclically. DefDP gives each worker a
// single disjoint chunk (classic BSP). SelDP gives every worker the whole
// dataset as a circular queue whose head is rotated by the worker id, so
// (a) any iteration that synchronizes still combines updates from N distinct
// chunks, and (b) a worker that mostly trains locally still sees all data.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "util/enum_names.hpp"

namespace selsync {

enum class PartitionScheme { kDefault, kSelSync, kNonIidLabel };

/// Display names (paper terminology); selsync_lint (enum-table) keeps this
/// table in lockstep with the enumerator list above.
inline constexpr EnumEntry<PartitionScheme> kPartitionSchemeNames[] = {
    {PartitionScheme::kDefault, "DefDP"},
    {PartitionScheme::kSelSync, "SelDP"},
    {PartitionScheme::kNonIidLabel, "NonIID"},
};

const char* partition_scheme_name(PartitionScheme scheme);

struct Partition {
  /// worker_order[w] = ordered sample indices worker w consumes (cyclically).
  std::vector<std::vector<size_t>> worker_order;

  size_t workers() const { return worker_order.size(); }
};

/// DefDP: one shuffle, then contiguous equal chunks; worker w owns chunk w
/// only. Trailing remainder samples are spread over the first workers.
Partition partition_default(size_t n, size_t workers, uint64_t seed);

/// SelDP: same chunks as DefDP, but worker w's stream is the concatenation
/// of all chunks starting from chunk w (circular rotation), covering all n
/// samples.
Partition partition_selsync(size_t n, size_t workers, uint64_t seed);

/// Non-IID label partitioning (paper §IV-A: 1 label/worker for CIFAR10,
/// 10 labels/worker for CIFAR100): labels are dealt round-robin to workers;
/// each worker's stream is a shuffle of the samples of its labels.
Partition partition_noniid_by_label(const Dataset& dataset, size_t workers,
                                    size_t labels_per_worker, uint64_t seed);

/// Dispatch helper used by the trainer configs.
Partition make_partition(PartitionScheme scheme, const Dataset& dataset,
                         size_t workers, size_t labels_per_worker,
                         uint64_t seed);

/// Walks one worker's index stream cyclically in fixed-size batches.
class ShardLoader {
 public:
  ShardLoader(DatasetPtr dataset, std::vector<size_t> order,
              size_t batch_size);

  /// Next batch of indices (wraps around at the end of the stream).
  const std::vector<size_t>& next_indices();

  /// Materializes the next batch.
  Batch next_batch();

  /// Fraction of the stream consumed so far (epochs in stream units).
  double epochs_consumed() const {
    return static_cast<double>(consumed_) / static_cast<double>(order_.size());
  }

  size_t batch_size() const { return batch_size_; }
  void set_batch_size(size_t b);
  const std::vector<size_t>& order() const { return order_; }
  const Dataset& dataset() const { return *dataset_; }

  /// Checkpoint-resume of the stream position: a restarted worker restores
  /// the cursor its checkpoint recorded so it replays the same sample
  /// sequence it would have seen without the crash.
  size_t cursor() const { return cursor_; }
  size_t consumed() const { return consumed_; }
  void restore_position(size_t cursor, size_t consumed);

 private:
  DatasetPtr dataset_;
  std::vector<size_t> order_;
  size_t batch_size_;
  size_t cursor_ = 0;
  size_t consumed_ = 0;
  std::vector<size_t> scratch_;
};

}  // namespace selsync
