// Dataset abstractions.
//
// A Dataset is an indexed collection of samples; batches are materialized
// from index lists so the partitioners (DefDP / SelDP / non-IID, §III-D) and
// the data-injection mechanism (§III-E) can be expressed purely as index
// streams — the same way the paper's partitioner reorders chunks without
// copying the underlying data.
#pragma once

#include <memory>
#include <vector>

#include "nn/model.hpp"

namespace selsync {

class Dataset {
 public:
  virtual ~Dataset() = default;

  /// Number of addressable samples (classification rows or LM windows).
  virtual size_t size() const = 0;

  /// Materializes the samples at `indices` into a training batch.
  virtual Batch make_batch(const std::vector<size_t>& indices) const = 0;

  /// Class label of sample i, or -1 when labels do not apply (LM data).
  virtual int label_of(size_t index) const {
    (void)index;
    return -1;
  }

  /// Distinct labels present (0 for LM data).
  virtual size_t num_classes() const { return 0; }

  /// Approximate wire size of one sample; drives the data-injection
  /// communication cost (§III-E quotes ~3 KB/image for CIFAR).
  virtual size_t sample_bytes() const = 0;
};

using DatasetPtr = std::shared_ptr<const Dataset>;

/// Classification dataset with dense float features. `image_shape` empty
/// means flat {dim} features; {C,H,W} means batches come out as rank-4.
class ClassificationDataset : public Dataset {
 public:
  ClassificationDataset(std::vector<float> features, size_t feature_dim,
                        std::vector<int> labels, size_t num_classes,
                        std::vector<size_t> image_shape = {});

  size_t size() const override { return labels_.size(); }
  Batch make_batch(const std::vector<size_t>& indices) const override;
  int label_of(size_t index) const override { return labels_.at(index); }
  size_t num_classes() const override { return num_classes_; }
  size_t sample_bytes() const override { return feature_dim_ * sizeof(float); }

  size_t feature_dim() const { return feature_dim_; }
  const std::vector<size_t>& image_shape() const { return image_shape_; }

 private:
  std::vector<float> features_;  // size() * feature_dim_
  size_t feature_dim_;
  std::vector<int> labels_;
  size_t num_classes_;
  std::vector<size_t> image_shape_;  // {} or {C, H, W} with C*H*W == dim
};

/// Language-modelling dataset: a token stream cut into fixed-length windows
/// (the paper's bptt batching). Sample i = tokens [i*T, (i+1)*T), target is
/// the stream shifted by one.
class SequenceDataset : public Dataset {
 public:
  SequenceDataset(std::vector<int> tokens, size_t vocab, size_t seq_len);

  size_t size() const override { return windows_; }
  Batch make_batch(const std::vector<size_t>& indices) const override;
  size_t sample_bytes() const override { return seq_len_ * sizeof(int); }

  size_t vocab() const { return vocab_; }
  size_t seq_len() const { return seq_len_; }

 private:
  std::vector<int> tokens_;
  size_t vocab_, seq_len_, windows_;
};

}  // namespace selsync
