// Synthetic workload generators standing in for CIFAR10/100, ImageNet-1K
// and WikiText-103 (see DESIGN.md §2 for the substitution rationale).
//
// Classification: Gaussian class clusters pushed through a fixed random
// tanh projection, so the task is learnable but not linearly separable and
// accuracy improves over many epochs like the paper's curves.
//
// Language modelling: a sparse Markov chain over the vocabulary, so the
// optimal perplexity is well below vocab size and models must learn the
// transition structure.
#pragma once

#include <memory>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace selsync {

struct SyntheticClassConfig {
  size_t train_samples = 4096;
  size_t test_samples = 1024;
  size_t classes = 10;
  size_t feature_dim = 64;       // flat mode
  bool image_mode = false;       // emit {C,H,W} samples instead
  size_t channels = 3;
  size_t height = 8;
  size_t width = 8;
  double class_separation = 2.5;  // distance between class means
  double noise_stddev = 1.0;
  uint64_t seed = 7;
};

struct SyntheticClassData {
  std::shared_ptr<ClassificationDataset> train;
  std::shared_ptr<ClassificationDataset> test;
};

SyntheticClassData make_synthetic_classification(
    const SyntheticClassConfig& config);

struct SyntheticTextConfig {
  size_t train_tokens = 60000;
  size_t test_tokens = 8000;
  size_t vocab = 64;
  size_t seq_len = 16;
  size_t branching = 4;       // likely successors per token
  double temperature = 0.12;  // mass left for non-preferred successors
  uint64_t seed = 11;
};

struct SyntheticTextData {
  std::shared_ptr<SequenceDataset> train;
  std::shared_ptr<SequenceDataset> test;
};

SyntheticTextData make_synthetic_text(const SyntheticTextConfig& config);

}  // namespace selsync
