#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace selsync {

namespace {

/// Samples `count` labelled feature rows (flat mode). Class k's raw vector
/// is mean_k + noise; the raw vector is then warped by a fixed random tanh
/// layer shared between train and test so both splits come from the same
/// distribution.
void sample_split_flat(const SyntheticClassConfig& cfg, size_t count,
                       const std::vector<float>& means,
                       const std::vector<float>& warp, Rng& rng,
                       std::vector<float>& features, std::vector<int>& labels) {
  const size_t d = cfg.feature_dim;
  features.resize(count * d);
  labels.resize(count);
  std::vector<float> raw(d);
  for (size_t i = 0; i < count; ++i) {
    const int k = static_cast<int>(rng.next_below(cfg.classes));
    labels[i] = k;
    const float* mean = means.data() + static_cast<size_t>(k) * d;
    for (size_t j = 0; j < d; ++j)
      raw[j] =
          mean[j] + static_cast<float>(rng.normal(0.0, cfg.noise_stddev));
    // Fixed random rotation + tanh nonlinearity: y_j = tanh(sum_m W_jm x_m).
    float* out = features.data() + i * d;
    for (size_t j = 0; j < d; ++j) {
      float acc = 0.f;
      const float* wrow = warp.data() + j * d;
      for (size_t m = 0; m < d; ++m) acc += wrow[m] * raw[m];
      out[j] = std::tanh(acc);
    }
  }
}

/// Builds smooth per-class image prototypes: a coarse 4x4 random grid per
/// channel, bilinearly upsampled to H x W. Smoothness gives the data the
/// local spatial correlations natural images have, so convolutional models
/// (the VGG/AlexNet analogues) can exploit locality the way they do on
/// CIFAR/ImageNet.
std::vector<float> make_image_prototypes(const SyntheticClassConfig& cfg,
                                         Rng& rng) {
  constexpr size_t kCoarse = 4;
  const size_t d = cfg.channels * cfg.height * cfg.width;
  std::vector<float> prototypes(cfg.classes * d);
  std::vector<float> coarse(cfg.channels * kCoarse * kCoarse);
  for (size_t k = 0; k < cfg.classes; ++k) {
    for (auto& v : coarse)
      v = static_cast<float>(rng.normal(0.0, cfg.class_separation));
    float* proto = prototypes.data() + k * d;
    for (size_t c = 0; c < cfg.channels; ++c) {
      const float* grid = coarse.data() + c * kCoarse * kCoarse;
      for (size_t y = 0; y < cfg.height; ++y) {
        const double gy = static_cast<double>(y) * (kCoarse - 1) /
                          std::max<size_t>(cfg.height - 1, 1);
        const size_t y0 = static_cast<size_t>(gy);
        const size_t y1 = std::min(y0 + 1, kCoarse - 1);
        const double fy = gy - y0;
        for (size_t x = 0; x < cfg.width; ++x) {
          const double gx = static_cast<double>(x) * (kCoarse - 1) /
                            std::max<size_t>(cfg.width - 1, 1);
          const size_t x0 = static_cast<size_t>(gx);
          const size_t x1 = std::min(x0 + 1, kCoarse - 1);
          const double fx = gx - x0;
          const double value =
              (1 - fy) * ((1 - fx) * grid[y0 * kCoarse + x0] +
                          fx * grid[y0 * kCoarse + x1]) +
              fy * ((1 - fx) * grid[y1 * kCoarse + x0] +
                    fx * grid[y1 * kCoarse + x1]);
          proto[(c * cfg.height + y) * cfg.width + x] =
              static_cast<float>(value);
        }
      }
    }
  }
  return prototypes;
}

/// Samples labelled images: smooth class prototype + pixel noise, squashed
/// by tanh to the natural [-1, 1] pixel range.
void sample_split_image(const SyntheticClassConfig& cfg, size_t count,
                        const std::vector<float>& prototypes, Rng& rng,
                        std::vector<float>& features,
                        std::vector<int>& labels) {
  const size_t d = cfg.channels * cfg.height * cfg.width;
  features.resize(count * d);
  labels.resize(count);
  for (size_t i = 0; i < count; ++i) {
    const int k = static_cast<int>(rng.next_below(cfg.classes));
    labels[i] = k;
    const float* proto = prototypes.data() + static_cast<size_t>(k) * d;
    float* out = features.data() + i * d;
    for (size_t j = 0; j < d; ++j)
      out[j] = std::tanh(
          proto[j] + static_cast<float>(rng.normal(0.0, cfg.noise_stddev)));
  }
}

}  // namespace

SyntheticClassData make_synthetic_classification(
    const SyntheticClassConfig& cfg) {
  const size_t d = cfg.image_mode ? cfg.channels * cfg.height * cfg.width
                                  : cfg.feature_dim;
  if (d == 0 || cfg.classes == 0)
    throw std::invalid_argument("make_synthetic_classification: empty dims");

  Rng rng(cfg.seed);
  std::vector<float> means, warp, prototypes;
  if (cfg.image_mode) {
    prototypes = make_image_prototypes(cfg, rng);
  } else {
    // Class means on a scaled Gaussian cloud.
    means.resize(cfg.classes * d);
    for (auto& v : means)
      v = static_cast<float>(rng.normal(
          0.0, cfg.class_separation / std::sqrt(static_cast<double>(d))));
    // Fixed random warp, variance-preserving scale 1/sqrt(d).
    warp.resize(d * d);
    for (auto& v : warp)
      v = static_cast<float>(
          rng.normal(0.0, 1.0 / std::sqrt(static_cast<double>(d))));
  }

  std::vector<size_t> image_shape;
  if (cfg.image_mode) image_shape = {cfg.channels, cfg.height, cfg.width};

  auto make_split = [&](size_t count, uint64_t stream) {
    std::vector<float> features;
    std::vector<int> labels;
    Rng split_rng = rng.fork(stream);
    if (cfg.image_mode)
      sample_split_image(cfg, count, prototypes, split_rng, features, labels);
    else
      sample_split_flat(cfg, count, means, warp, split_rng, features, labels);
    return std::make_shared<ClassificationDataset>(
        std::move(features), d, std::move(labels), cfg.classes, image_shape);
  };

  SyntheticClassData out;
  out.train = make_split(cfg.train_samples, 1);
  out.test = make_split(cfg.test_samples, 2);
  return out;
}

SyntheticTextData make_synthetic_text(const SyntheticTextConfig& cfg) {
  if (cfg.vocab < 2 || cfg.branching == 0 || cfg.branching > cfg.vocab)
    throw std::invalid_argument("make_synthetic_text: bad config");
  Rng rng(cfg.seed);

  // Each token prefers `branching` successors that share (1 - temperature)
  // of the probability mass; the rest is spread uniformly.
  std::vector<std::vector<int>> successors(cfg.vocab);
  for (size_t t = 0; t < cfg.vocab; ++t) {
    auto picks = rng.sample_without_replacement(cfg.vocab, cfg.branching);
    successors[t].assign(picks.begin(), picks.end());
  }

  auto sample_stream = [&](size_t count, Rng& stream_rng) {
    std::vector<int> tokens(count);
    int cur = static_cast<int>(stream_rng.next_below(cfg.vocab));
    for (size_t i = 0; i < count; ++i) {
      tokens[i] = cur;
      if (stream_rng.uniform() < 1.0 - cfg.temperature) {
        const auto& succ = successors[static_cast<size_t>(cur)];
        cur = succ[stream_rng.next_below(succ.size())];
      } else {
        cur = static_cast<int>(stream_rng.next_below(cfg.vocab));
      }
    }
    return tokens;
  };

  SyntheticTextData out;
  Rng train_rng = rng.fork(1);
  Rng test_rng = rng.fork(2);
  out.train = std::make_shared<SequenceDataset>(
      sample_stream(cfg.train_tokens, train_rng), cfg.vocab, cfg.seq_len);
  out.test = std::make_shared<SequenceDataset>(
      sample_stream(cfg.test_tokens, test_rng), cfg.vocab, cfg.seq_len);
  return out;
}

}  // namespace selsync
