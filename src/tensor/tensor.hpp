// Dense float32 tensor with row-major contiguous storage.
//
// Deliberately small: the NN layers in src/nn own their backward passes, so
// the tensor type only needs storage, shape bookkeeping and elementwise
// helpers. Heavy kernels (matmul, conv) live in tensor/ops.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace selsync {

class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<size_t> shape);

  /// Tensor with explicit contents; `data.size()` must equal the shape
  /// element count.
  Tensor(std::vector<size_t> shape, std::vector<float> data);

  static Tensor zeros(std::vector<size_t> shape) { return Tensor(std::move(shape)); }
  static Tensor full(std::vector<size_t> shape, float value);
  /// i.i.d. N(mean, stddev) entries.
  static Tensor randn(std::vector<size_t> shape, Rng& rng, float mean = 0.f,
                      float stddev = 1.f);
  /// Xavier/Glorot uniform init for a weight of shape {fan_out, fan_in}.
  static Tensor xavier(std::vector<size_t> shape, Rng& rng, size_t fan_in,
                       size_t fan_out);
  /// He/Kaiming normal init (preferred before ReLU).
  static Tensor kaiming(std::vector<size_t> shape, Rng& rng, size_t fan_in);

  const std::vector<size_t>& shape() const { return shape_; }
  size_t rank() const { return shape_.size(); }
  size_t dim(size_t i) const { return shape_.at(i); }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  float& operator[](size_t i) { return data_[i]; }
  float operator[](size_t i) const { return data_[i]; }

  /// 2-D accessor; tensor must have rank 2.
  float& at(size_t r, size_t c);
  float at(size_t r, size_t c) const;

  /// Reinterprets the buffer with a new shape of equal element count.
  Tensor reshaped(std::vector<size_t> new_shape) const;

  void fill(float value);
  void zero() { fill(0.f); }

  /// In-place elementwise operations (shapes must match).
  Tensor& add_(const Tensor& other);
  Tensor& sub_(const Tensor& other);
  Tensor& mul_(const Tensor& other);
  Tensor& scale_(float s);
  /// this += s * other  (axpy).
  Tensor& axpy_(float s, const Tensor& other);

  /// Out-of-place counterparts.
  Tensor operator+(const Tensor& other) const;
  Tensor operator-(const Tensor& other) const;
  Tensor operator*(float s) const;

  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  /// Squared L2 norm (sum of squares).
  double sq_norm() const;
  double l2_norm() const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  std::string shape_str() const;

 private:
  std::vector<size_t> shape_;
  std::vector<float> data_;
};

/// Total element count implied by a shape.
size_t shape_numel(const std::vector<size_t>& shape);

}  // namespace selsync
