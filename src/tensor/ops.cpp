#include "tensor/ops.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace selsync::ops {

namespace {
void check_rank2(const Tensor& t, const char* who) {
  if (t.rank() != 2) throw std::invalid_argument(std::string(who) + ": need rank-2 tensor");
}
}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul");
  check_rank2(b, "matmul");
  const size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul: inner dim mismatch");
  Tensor c({m, n});
  const float* A = a.data();
  const float* B = b.data();
  float* C = c.data();
  for (size_t i = 0; i < m; ++i) {
    const float* Ai = A + i * k;
    float* Ci = C + i * n;
    for (size_t p = 0; p < k; ++p) {
      const float aip = Ai[p];
      if (aip == 0.f) continue;
      const float* Bp = B + p * n;
      for (size_t j = 0; j < n; ++j) Ci[j] += aip * Bp[j];
    }
  }
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_nt");
  check_rank2(b, "matmul_nt");
  const size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k)
    throw std::invalid_argument("matmul_nt: inner dim mismatch");
  Tensor c({m, n});
  const float* A = a.data();
  const float* B = b.data();
  float* C = c.data();
  for (size_t i = 0; i < m; ++i) {
    const float* Ai = A + i * k;
    float* Ci = C + i * n;
    for (size_t j = 0; j < n; ++j) {
      const float* Bj = B + j * k;
      float acc = 0.f;
      for (size_t p = 0; p < k; ++p) acc += Ai[p] * Bj[p];
      Ci[j] = acc;
    }
  }
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_tn");
  check_rank2(b, "matmul_tn");
  const size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k)
    throw std::invalid_argument("matmul_tn: inner dim mismatch");
  Tensor c({m, n});
  const float* A = a.data();
  const float* B = b.data();
  float* C = c.data();
  for (size_t p = 0; p < k; ++p) {
    const float* Ap = A + p * m;
    const float* Bp = B + p * n;
    for (size_t i = 0; i < m; ++i) {
      const float api = Ap[i];
      if (api == 0.f) continue;
      float* Ci = C + i * n;
      for (size_t j = 0; j < n; ++j) Ci[j] += api * Bp[j];
    }
  }
  return c;
}

Tensor transpose(const Tensor& a) {
  check_rank2(a, "transpose");
  const size_t m = a.dim(0), n = a.dim(1);
  Tensor t({n, m});
  for (size_t i = 0; i < m; ++i)
    for (size_t j = 0; j < n; ++j) t.at(j, i) = a.at(i, j);
  return t;
}

void add_row_bias(Tensor& a, const Tensor& bias) {
  check_rank2(a, "add_row_bias");
  const size_t m = a.dim(0), n = a.dim(1);
  if (bias.size() != n)
    throw std::invalid_argument("add_row_bias: bias length mismatch");
  for (size_t i = 0; i < m; ++i) {
    float* row = a.data() + i * n;
    for (size_t j = 0; j < n; ++j) row[j] += bias[j];
  }
}

Tensor sum_rows(const Tensor& a) {
  check_rank2(a, "sum_rows");
  const size_t m = a.dim(0), n = a.dim(1);
  Tensor out({n});
  for (size_t i = 0; i < m; ++i) {
    const float* row = a.data() + i * n;
    for (size_t j = 0; j < n; ++j) out[j] += row[j];
  }
  return out;
}

Tensor softmax_rows(const Tensor& logits) {
  check_rank2(logits, "softmax_rows");
  const size_t m = logits.dim(0), n = logits.dim(1);
  Tensor out({m, n});
  for (size_t i = 0; i < m; ++i) {
    const float* in = logits.data() + i * n;
    float* o = out.data() + i * n;
    float mx = -std::numeric_limits<float>::infinity();
    for (size_t j = 0; j < n; ++j) mx = std::max(mx, in[j]);
    float denom = 0.f;
    for (size_t j = 0; j < n; ++j) {
      o[j] = std::exp(in[j] - mx);
      denom += o[j];
    }
    const float inv = 1.f / denom;
    for (size_t j = 0; j < n; ++j) o[j] *= inv;
  }
  return out;
}

Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              size_t pad) {
  const size_t N = input.dim(0), Cin = input.dim(1), H = input.dim(2),
               W = input.dim(3);
  const size_t Cout = weight.dim(0), Kh = weight.dim(2), Kw = weight.dim(3);
  if (weight.dim(1) != Cin)
    throw std::invalid_argument("conv2d: channel mismatch");
  const size_t Ho = H + 2 * pad - Kh + 1, Wo = W + 2 * pad - Kw + 1;
  Tensor out({N, Cout, Ho, Wo});
  for (size_t n = 0; n < N; ++n)
    for (size_t co = 0; co < Cout; ++co) {
      float* o = out.data() + ((n * Cout + co) * Ho) * Wo;
      const float b = bias.empty() ? 0.f : bias[co];
      for (size_t y = 0; y < Ho * Wo; ++y) o[y] = b;
      for (size_t ci = 0; ci < Cin; ++ci) {
        const float* in = input.data() + ((n * Cin + ci) * H) * W;
        const float* w = weight.data() + ((co * Cin + ci) * Kh) * Kw;
        for (size_t ky = 0; ky < Kh; ++ky)
          for (size_t kx = 0; kx < Kw; ++kx) {
            const float wv = w[ky * Kw + kx];
            if (wv == 0.f) continue;
            for (size_t oy = 0; oy < Ho; ++oy) {
              const long iy = static_cast<long>(oy + ky) - static_cast<long>(pad);
              if (iy < 0 || iy >= static_cast<long>(H)) continue;
              const float* in_row = in + iy * W;
              float* o_row = o + oy * Wo;
              for (size_t ox = 0; ox < Wo; ++ox) {
                const long ix = static_cast<long>(ox + kx) - static_cast<long>(pad);
                if (ix < 0 || ix >= static_cast<long>(W)) continue;
                o_row[ox] += wv * in_row[ix];
              }
            }
          }
      }
    }
  return out;
}

void conv2d_backward(const Tensor& input, const Tensor& weight, size_t pad,
                     const Tensor& grad_out, Tensor& grad_input,
                     Tensor& grad_weight, Tensor& grad_bias) {
  const size_t N = input.dim(0), Cin = input.dim(1), H = input.dim(2),
               W = input.dim(3);
  const size_t Cout = weight.dim(0), Kh = weight.dim(2), Kw = weight.dim(3);
  const size_t Ho = grad_out.dim(2), Wo = grad_out.dim(3);

  grad_input = Tensor(input.shape());
  grad_weight = Tensor(weight.shape());
  grad_bias = Tensor({Cout});

  for (size_t n = 0; n < N; ++n)
    for (size_t co = 0; co < Cout; ++co) {
      const float* go = grad_out.data() + ((n * Cout + co) * Ho) * Wo;
      for (size_t y = 0; y < Ho * Wo; ++y) grad_bias[co] += go[y];
      for (size_t ci = 0; ci < Cin; ++ci) {
        const float* in = input.data() + ((n * Cin + ci) * H) * W;
        float* gi = grad_input.data() + ((n * Cin + ci) * H) * W;
        const float* w = weight.data() + ((co * Cin + ci) * Kh) * Kw;
        float* gw = grad_weight.data() + ((co * Cin + ci) * Kh) * Kw;
        for (size_t ky = 0; ky < Kh; ++ky)
          for (size_t kx = 0; kx < Kw; ++kx) {
            const float wv = w[ky * Kw + kx];
            float gw_acc = 0.f;
            for (size_t oy = 0; oy < Ho; ++oy) {
              const long iy = static_cast<long>(oy + ky) - static_cast<long>(pad);
              if (iy < 0 || iy >= static_cast<long>(H)) continue;
              const float* in_row = in + iy * W;
              float* gi_row = gi + iy * W;
              const float* go_row = go + oy * Wo;
              for (size_t ox = 0; ox < Wo; ++ox) {
                const long ix = static_cast<long>(ox + kx) - static_cast<long>(pad);
                if (ix < 0 || ix >= static_cast<long>(W)) continue;
                gw_acc += go_row[ox] * in_row[ix];
                gi_row[ix] += go_row[ox] * wv;
              }
            }
            gw[ky * Kw + kx] += gw_acc;
          }
      }
    }
}

Tensor maxpool2x2(const Tensor& input, std::vector<uint32_t>& argmax) {
  const size_t N = input.dim(0), C = input.dim(1), H = input.dim(2),
               W = input.dim(3);
  const size_t Ho = H / 2, Wo = W / 2;
  Tensor out({N, C, Ho, Wo});
  argmax.assign(out.size(), 0);
  size_t oi = 0;
  for (size_t nc = 0; nc < N * C; ++nc) {
    const float* in = input.data() + nc * H * W;
    for (size_t oy = 0; oy < Ho; ++oy)
      for (size_t ox = 0; ox < Wo; ++ox, ++oi) {
        float best = -std::numeric_limits<float>::infinity();
        uint32_t best_idx = 0;
        for (size_t dy = 0; dy < 2; ++dy)
          for (size_t dx = 0; dx < 2; ++dx) {
            const size_t idx = (oy * 2 + dy) * W + (ox * 2 + dx);
            if (in[idx] > best) {
              best = in[idx];
              best_idx = static_cast<uint32_t>(nc * H * W + idx);
            }
          }
        out[oi] = best;
        argmax[oi] = best_idx;
      }
  }
  return out;
}

Tensor maxpool2x2_backward(const Tensor& grad_out,
                           const std::vector<uint32_t>& argmax,
                           const std::vector<size_t>& input_shape) {
  Tensor grad_in(input_shape);
  assert(argmax.size() == grad_out.size());
  for (size_t i = 0; i < grad_out.size(); ++i)
    grad_in[argmax[i]] += grad_out[i];
  return grad_in;
}

}  // namespace selsync::ops
