#include "tensor/tensor.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace selsync {

size_t shape_numel(const std::vector<size_t>& shape) {
  size_t n = 1;
  for (size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

Tensor::Tensor(std::vector<size_t> shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.f) {}

Tensor::Tensor(std::vector<size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (data_.size() != shape_numel(shape_))
    throw std::invalid_argument("Tensor: data size does not match shape");
}

Tensor Tensor::full(std::vector<size_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::vector<size_t> shape, Rng& rng, float mean,
                     float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::xavier(std::vector<size_t> shape, Rng& rng, size_t fan_in,
                      size_t fan_out) {
  const double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(-limit, limit));
  return t;
}

Tensor Tensor::kaiming(std::vector<size_t> shape, Rng& rng, size_t fan_in) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  return randn(std::move(shape), rng, 0.f, static_cast<float>(stddev));
}

float& Tensor::at(size_t r, size_t c) {
  assert(rank() == 2);
  return data_[r * shape_[1] + c];
}

float Tensor::at(size_t r, size_t c) const {
  assert(rank() == 2);
  return data_[r * shape_[1] + c];
}

Tensor Tensor::reshaped(std::vector<size_t> new_shape) const {
  if (shape_numel(new_shape) != size())
    throw std::invalid_argument("reshaped: element count mismatch");
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor& Tensor::add_(const Tensor& other) {
  assert(same_shape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::sub_(const Tensor& other) {
  assert(same_shape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::mul_(const Tensor& other) {
  assert(same_shape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Tensor& Tensor::scale_(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Tensor& Tensor::axpy_(float s, const Tensor& other) {
  assert(same_shape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
  return *this;
}

Tensor Tensor::operator+(const Tensor& other) const {
  Tensor out = *this;
  out.add_(other);
  return out;
}

Tensor Tensor::operator-(const Tensor& other) const {
  Tensor out = *this;
  out.sub_(other);
  return out;
}

Tensor Tensor::operator*(float s) const {
  Tensor out = *this;
  out.scale_(s);
  return out;
}

float Tensor::sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.f);
}

float Tensor::mean() const {
  return data_.empty() ? 0.f : sum() / static_cast<float>(data_.size());
}

float Tensor::min() const {
  return data_.empty() ? 0.f : *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  return data_.empty() ? 0.f : *std::max_element(data_.begin(), data_.end());
}

double Tensor::sq_norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return s;
}

double Tensor::l2_norm() const { return std::sqrt(sq_norm()); }

std::string Tensor::shape_str() const {
  std::ostringstream out;
  out << '[';
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) out << 'x';
    out << shape_[i];
  }
  out << ']';
  return out.str();
}

}  // namespace selsync
