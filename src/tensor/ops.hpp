// Dense compute kernels used by the NN layers.
//
// All kernels are single-threaded: in this repo, parallelism is expressed at
// the *cluster* level (one thread per simulated worker, see src/comm), so
// per-worker math stays serial exactly like one GPU stream in the paper's
// setup.
#pragma once

#include "tensor/tensor.hpp"

namespace selsync::ops {

/// C = A (m x k) * B (k x n). Blocked i-k-j loop order for cache locality.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A (m x k) * B^T where B is (n x k). Used by Linear backward.
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// C = A^T (k x m -> m x k view) * B (k x n). Used by weight gradients.
Tensor matmul_tn(const Tensor& a, const Tensor& b);

Tensor transpose(const Tensor& a);

/// Adds row vector `bias` (shape {n}) to every row of `a` (shape {m, n}).
void add_row_bias(Tensor& a, const Tensor& bias);

/// Sums rows of `a` (m x n) into a length-n vector; bias gradient.
Tensor sum_rows(const Tensor& a);

/// Row-wise softmax of logits (m x n).
Tensor softmax_rows(const Tensor& logits);

/// 2-D convolution, NCHW layout, stride 1, symmetric zero padding.
/// input {N,Cin,H,W}, weight {Cout,Cin,Kh,Kw}, bias {Cout}.
Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              size_t pad);

/// Gradients of conv2d. `grad_out` has the forward output's shape.
void conv2d_backward(const Tensor& input, const Tensor& weight, size_t pad,
                     const Tensor& grad_out, Tensor& grad_input,
                     Tensor& grad_weight, Tensor& grad_bias);

/// 2x2 max pooling with stride 2. Also records argmax indices for backward.
Tensor maxpool2x2(const Tensor& input, std::vector<uint32_t>& argmax);
Tensor maxpool2x2_backward(const Tensor& grad_out,
                           const std::vector<uint32_t>& argmax,
                           const std::vector<size_t>& input_shape);

}  // namespace selsync::ops
