// Strategy shootout: train the same model under all five distributed
// strategies (BSP, LocalSGD, FedAvg, SSP, SelSync) and compare accuracy,
// communication and simulated training time — a miniature Table I.
//
// Run: ./build/examples/strategy_shootout
#include <cstdio>
#include <memory>

#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "optim/optimizer.hpp"

using namespace selsync;

int main() {
  SyntheticClassConfig data_cfg;
  data_cfg.train_samples = 4096;
  data_cfg.test_samples = 768;
  data_cfg.classes = 10;
  data_cfg.feature_dim = 48;
  const SyntheticClassData data = make_synthetic_classification(data_cfg);

  auto make_job = [&](StrategyKind strategy) {
    TrainJob job;
    job.strategy = strategy;
    job.workers = 8;
    job.batch_size = 16;
    job.max_iterations = 400;
    job.eval_interval = 50;
    job.train_data = data.train;
    job.test_data = data.test;
    job.model_factory = [](uint64_t seed) {
      ClassifierConfig cfg;
      cfg.input_dim = 48;
      cfg.classes = 10;
      cfg.hidden = 48;
      cfg.resnet_blocks = 2;
      return make_resnet_mlp(cfg, seed);
    };
    job.optimizer_factory = [] {
      return std::make_unique<Sgd>(std::make_shared<ConstantLr>(0.05),
                                   SgdOptions{.momentum = 0.9});
    };
    job.paper_model = paper_resnet101();
    return job;
  };

  std::printf("== Strategy shootout: 8 workers, ResNet-style model ==\n\n");
  std::printf("%-22s %8s %7s %10s %12s\n", "strategy", "top1", "LSSR",
              "comm [GB]", "sim time [s]");

  auto report = [&](const char* label, const TrainResult& r) {
    std::printf("%-22s %8.3f %7s %10.1f %12.1f\n", label, r.best_top1,
                r.lssr_applicable
                    ? (std::to_string(r.lssr()).substr(0, 5)).c_str()
                    : "-",
                r.comm_bytes / (1024.0 * 1024.0 * 1024.0), r.sim_time_s);
  };

  report("BSP", run_training(make_job(StrategyKind::kBsp)));
  report("LocalSGD", run_training(make_job(StrategyKind::kLocalSgd)));

  TrainJob fedavg = make_job(StrategyKind::kFedAvg);
  fedavg.fedavg = {1.0, 0.25};
  report("FedAvg (C=1,E=.25)", run_training(fedavg));

  TrainJob ssp = make_job(StrategyKind::kSsp);
  ssp.ssp.staleness = 50;
  report("SSP (s=50)", run_training(ssp));

  TrainJob easgd = make_job(StrategyKind::kEasgd);
  easgd.easgd = {0.5, 0.5, 4};
  report("EASGD (tau=4)", run_training(easgd));

  TrainJob selsync = make_job(StrategyKind::kSelSync);
  selsync.selsync.delta = 0.15;
  report("SelSync (d=0.15)", run_training(selsync));

  std::printf(
      "\nSelSync should sit near BSP's accuracy while moving a fraction of\n"
      "the bytes — it only synchronizes when the relative gradient change\n"
      "says the update matters.\n");
  return 0;
}
