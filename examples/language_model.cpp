// Language-model scenario: a causal Transformer encoder trained on a
// synthetic Markov token stream (the paper's Transformer/WikiText-103
// workload), under BSP and SelSync with the paper's per-iteration LR decay.
//
// Run: ./build/examples/language_model
#include <cstdio>
#include <memory>

#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "nn/transformer_lm.hpp"
#include "optim/optimizer.hpp"

using namespace selsync;

int main() {
  SyntheticTextConfig text_cfg;
  text_cfg.train_tokens = 40000;
  text_cfg.test_tokens = 6000;
  text_cfg.vocab = 48;
  text_cfg.seq_len = 12;
  const SyntheticTextData data = make_synthetic_text(text_cfg);

  auto make_job = [&](StrategyKind strategy) {
    TrainJob job;
    job.strategy = strategy;
    job.workers = 8;
    job.batch_size = 4;  // sequences per step (the paper uses 20 @ bptt 35)
    job.max_iterations = 500;
    job.eval_interval = 100;
    job.train_data = data.train;
    job.test_data = data.test;
    job.model_factory = [](uint64_t seed) {
      TransformerConfig cfg;
      cfg.vocab = 48;
      cfg.model_dim = 24;
      cfg.ff_dim = 48;
      cfg.num_heads = 2;
      cfg.num_layers = 2;
      cfg.seq_len = 12;
      cfg.dropout = 0.1f;
      return std::make_unique<TransformerLM>(cfg, seed);
    };
    // Paper schedule: SGD with lr decaying x0.8 every 2000 iterations
    // (scaled to our shorter runs).
    job.optimizer_factory = [] {
      return std::make_unique<Sgd>(
          std::make_shared<IterationExpDecay>(0.25, 200, 0.8));
    };
    job.paper_model = paper_transformer();
    return job;
  };

  std::printf("== Transformer LM on a synthetic Markov stream ==\n");
  std::printf("(uniform-guess perplexity would be %d)\n\n", 48);

  const TrainResult bsp = run_training(make_job(StrategyKind::kBsp));
  std::printf("BSP:     best ppl = %-7.2f  sim time = %.0fs\n",
              bsp.best_perplexity, bsp.sim_time_s);

  TrainJob sel = make_job(StrategyKind::kSelSync);
  sel.selsync.delta = 0.1;
  const TrainResult selres = run_training(sel);
  std::printf("SelSync: best ppl = %-7.2f  sim time = %.0fs  (LSSR %.2f)\n",
              selres.best_perplexity, selres.sim_time_s, selres.lssr());

  std::printf("\nPerplexity trajectory (BSP): ");
  for (const EvalPoint& pt : bsp.eval_history)
    std::printf(" %.1f", pt.perplexity);
  std::printf("\nPerplexity trajectory (Sel): ");
  for (const EvalPoint& pt : selres.eval_history)
    std::printf(" %.1f", pt.perplexity);
  std::printf(
      "\n\nBoth runs should drive perplexity well below the uniform limit;\n"
      "SelSync does it with a fraction of the synchronization rounds.\n");
  return 0;
}
