// Checkpoint / resume: train a model halfway, checkpoint it (parameters +
// optimizer momentum), then resume in a fresh process-state and verify the
// resumed trajectory is bit-identical to an uninterrupted run.
//
// Run: ./build/examples/resume_training
#include <cstdio>
#include <memory>

#include "core/checkpoint.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "optim/optimizer.hpp"

using namespace selsync;

namespace {

std::unique_ptr<Model> make_model() {
  ClassifierConfig cfg;
  cfg.input_dim = 32;
  cfg.classes = 10;
  cfg.hidden = 32;
  cfg.resnet_blocks = 2;
  return make_resnet_mlp(cfg, /*seed=*/1);
}

std::unique_ptr<Sgd> make_optimizer() {
  return std::make_unique<Sgd>(std::make_shared<ConstantLr>(0.05),
                               SgdOptions{.momentum = 0.9});
}

}  // namespace

int main() {
  SyntheticClassConfig data_cfg;
  data_cfg.train_samples = 512;
  data_cfg.test_samples = 128;
  data_cfg.feature_dim = 32;
  const SyntheticClassData data = make_synthetic_classification(data_cfg);
  std::vector<size_t> order(data.train->size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  const std::string path = "/tmp/selsync_resume_example.ckpt";
  constexpr uint64_t kTotal = 200, kHalf = 100;

  // --- uninterrupted reference run -----------------------------------------
  auto reference = make_model();
  auto ref_opt = make_optimizer();
  {
    ShardLoader loader(data.train, order, 32);
    for (uint64_t it = 0; it < kTotal; ++it) {
      reference->train_step(loader.next_batch());
      ref_opt->step(reference->params(), it, 0.0);
    }
  }

  // --- interrupted run: train half, checkpoint, resume ---------------------
  {
    auto model = make_model();
    auto opt = make_optimizer();
    ShardLoader loader(data.train, order, 32);
    for (uint64_t it = 0; it < kHalf; ++it) {
      model->train_step(loader.next_batch());
      opt->step(model->params(), it, 0.0);
    }
    save_checkpoint(path, *model, opt.get(), kHalf);
    std::printf("checkpoint written at iteration %llu (%zu params + SGD "
                "momentum)\n",
                static_cast<unsigned long long>(kHalf), model->param_count());
  }
  {
    auto model = make_model();  // fresh replica, wrong weights...
    auto opt = make_optimizer();
    const CheckpointInfo info = load_checkpoint(path, *model, opt.get());
    std::printf("resumed from iteration %llu\n",
                static_cast<unsigned long long>(info.iteration));
    // ...the data loader must also be replayed to the same position.
    ShardLoader loader(data.train, order, 32);
    for (uint64_t it = 0; it < info.iteration; ++it) loader.next_indices();
    for (uint64_t it = info.iteration; it < kTotal; ++it) {
      model->train_step(loader.next_batch());
      opt->step(model->params(), it, 0.0);
    }

    const auto a = reference->get_flat_params();
    const auto b = model->get_flat_params();
    size_t mismatches = 0;
    for (size_t i = 0; i < a.size(); ++i)
      if (a[i] != b[i]) ++mismatches;
    std::printf("resumed vs uninterrupted parameters: %zu mismatches out of "
                "%zu -> %s\n",
                mismatches, a.size(),
                mismatches == 0 ? "bit-identical resume"
                                : "MISMATCH (should not happen)");
  }
  std::remove(path.c_str());
  return 0;
}
