// Federated non-IID scenario: ten workers each hold a single class label
// (the paper's CIFAR10 federated split). Shows the failure of pure local
// training, the partial fix from FedAvg, and SelSync + randomized data
// injection recovering most of the lost accuracy (paper §III-E, Fig. 12).
//
// Run: ./build/examples/federated_noniid
#include <cstdio>
#include <memory>

#include "core/trainer.hpp"
#include "data/injection.hpp"
#include "data/synthetic.hpp"
#include "nn/eval_report.hpp"
#include "nn/models.hpp"
#include "optim/optimizer.hpp"

using namespace selsync;

int main() {
  SyntheticClassConfig data_cfg;
  data_cfg.train_samples = 3000;
  data_cfg.test_samples = 600;
  data_cfg.classes = 10;
  data_cfg.feature_dim = 32;
  data_cfg.class_separation = 1.8;  // harder task, where non-IID damage shows
  data_cfg.noise_stddev = 1.2;
  data_cfg.seed = 41;  // the Fig. 12 bench's data split
  const SyntheticClassData data = make_synthetic_classification(data_cfg);

  auto make_job = [&](StrategyKind strategy) {
    TrainJob job;
    job.strategy = strategy;
    job.workers = 10;
    job.batch_size = 16;
    job.max_iterations = 700;
    job.eval_interval = 50;
    job.train_data = data.train;
    job.test_data = data.test;
    job.partition = PartitionScheme::kNonIidLabel;
    job.labels_per_worker = 1;  // fully skewed: one class per device
    job.model_factory = [](uint64_t seed) {
      ClassifierConfig cfg;
      cfg.input_dim = 32;
      cfg.classes = 10;
      cfg.hidden = 32;
      cfg.resnet_blocks = 2;
      return make_resnet_mlp(cfg, seed);
    };
    job.optimizer_factory = [] {
      return std::make_unique<Sgd>(std::make_shared<ConstantLr>(0.05),
                                   SgdOptions{.momentum = 0.9});
    };
    return job;
  };

  std::printf("== Federated non-IID: 10 devices, 1 label each ==\n\n");

  TrainJob local = make_job(StrategyKind::kLocalSgd);
  const TrainResult r_local = run_training(local);
  std::printf("local SGD only:               top1 = %.3f  (collapses: each "
              "device knows one class)\n",
              r_local.best_top1);

  // Show the collapse signature: a fresh worker-0 replica trained on a
  // single label predicts almost nothing else.
  {
    auto model = local.model_factory(local.seed);
    const Partition part = partition_noniid_by_label(
        *data.train, local.workers, 1, local.seed ^ 0xDA7AULL);
    ShardLoader loader(data.train, part.worker_order[0], 16);
    auto opt = local.optimizer_factory();
    for (int it = 0; it < 200; ++it) {
      model->train_step(loader.next_batch());
      opt->step(model->params(), it, 0.0);
    }
    const ConfusionMatrix cm = evaluate_confusion(*model, *data.test);
    std::printf("  worker-0 alone never predicts %zu of 10 classes "
                "(macro-F1 %.2f)\n",
                cm.never_predicted_classes(), cm.macro_f1());
  }

  TrainJob fedavg = make_job(StrategyKind::kFedAvg);
  fedavg.fedavg = {1.0, 1.0};
  const TrainResult r_fed = run_training(fedavg);
  std::printf("FedAvg (C=1, 1x/epoch):       top1 = %.3f\n", r_fed.best_top1);

  TrainJob selsync = make_job(StrategyKind::kSelSync);
  selsync.selsync.delta = 0.15;
  const TrainResult r_sel = run_training(selsync);
  std::printf("SelSync, no injection:        top1 = %.3f  (LSSR %.2f)\n",
              r_sel.best_top1, r_sel.lssr());

  TrainJob injected = make_job(StrategyKind::kSelSync);
  injected.selsync.delta = 0.15;
  injected.injection = {true, 0.75, 0.75};
  // Eqn. 3 keeps the effective batch at b: b' = b / (1 + alpha*beta*N).
  std::printf("\n  (injection shrinks the local batch to b' = %zu per "
              "Eqn. 3)\n\n",
              injection_adjusted_batch(16, 0.75, 0.75, 10));
  const TrainResult r_inj = run_training(injected);
  std::printf("SelSync + injection (.75,.75): top1 = %.3f  (LSSR %.2f)\n",
              r_inj.best_top1, r_inj.lssr());

  std::printf(
      "\nData injection lets mostly-local workers see a trickle of other\n"
      "devices' samples each step, repairing the label skew at a per-step\n"
      "cost of a few KB instead of a full model exchange.\n");
  return 0;
}
