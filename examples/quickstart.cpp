// Quickstart: train one model with BSP and with SelSync on a synthetic
// 10-class task and compare accuracy, LSSR and simulated training time.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "optim/optimizer.hpp"

using namespace selsync;

namespace {

TrainJob base_job(const SyntheticClassData& data) {
  TrainJob job;
  job.workers = 4;
  job.batch_size = 32;
  job.max_iterations = 600;
  job.eval_interval = 100;
  job.train_data = data.train;
  job.test_data = data.test;
  job.partition = PartitionScheme::kSelSync;
  job.model_factory = [](uint64_t seed) {
    ClassifierConfig cfg;
    cfg.input_dim = 64;
    cfg.classes = 10;
    return make_resnet_mlp(cfg, seed);
  };
  job.optimizer_factory = [] {
    return std::make_unique<Sgd>(std::make_shared<ConstantLr>(0.05),
                                 SgdOptions{.momentum = 0.9});
  };
  job.paper_model = paper_resnet101();
  return job;
}

void report(const char* name, const TrainResult& r) {
  std::printf("%-10s iters=%5llu  top1=%.3f  LSSR=%.3f  sim_time=%.1fs\n",
              name, static_cast<unsigned long long>(r.iterations),
              r.final_eval.top1, r.lssr_applicable ? r.lssr() : 0.0,
              r.sim_time_s);
}

}  // namespace

int main() {
  SyntheticClassConfig data_cfg;
  data_cfg.train_samples = 4096;
  data_cfg.test_samples = 1024;
  const SyntheticClassData data = make_synthetic_classification(data_cfg);

  std::printf("== SelSync quickstart: 4 workers, synthetic 10-class task ==\n");

  TrainJob bsp = base_job(data);
  bsp.strategy = StrategyKind::kBsp;
  report("BSP", run_training(bsp));

  TrainJob sel = base_job(data);
  sel.strategy = StrategyKind::kSelSync;
  sel.selsync.delta = 0.04;
  sel.selsync.aggregation = AggregationMode::kParameters;
  report("SelSync", run_training(sel));

  std::printf(
      "\nSelSync skips communication whenever relative gradient change stays\n"
      "below delta, so it should reach comparable accuracy with a high LSSR\n"
      "and a much lower simulated training time.\n");
  return 0;
}
