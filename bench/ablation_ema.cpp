// Ablation (extension): Polyak/EMA weight averaging on top of SelSync.
//
// Semi-synchronous training trades smoothness for communication; evaluating
// an exponential moving average of the weights recovers smoothness for free
// (no extra bytes on the wire). This bench compares SelSync with and
// without EMA evaluation across the δ dial.
#include "bench_common.hpp"

using namespace selsync;
using namespace selsync::bench;

int main() {
  print_banner("Ablation — EMA weight averaging on top of SelSync",
               "(extension; free smoothing for semi-synchronous training)");

  CsvWriter csv(results_dir() + "/ablation_ema.csv",
                {"delta", "ema_decay", "lssr", "top1"});

  const Workload w = workload_resnet();
  std::printf("%10s %12s %8s %10s\n", "delta", "ema", "LSSR", "top1");
  for (double delta : {0.1, 0.15, 0.25}) {
    for (double ema : {0.0, 0.98}) {
      TrainJob job = make_job(w, StrategyKind::kSelSync, 16, 400);
      job.selsync.delta = delta;
      job.ema_decay = ema;
      const TrainResult r = run_training(job);
      std::printf("%10.2f %12s %8.3f %10.3f\n", delta,
                  ema > 0 ? "0.98" : "off", r.lssr(), r.best_top1);
      csv.row({CsvWriter::format_double(delta), CsvWriter::format_double(ema),
               CsvWriter::format_double(r.lssr()),
               CsvWriter::format_double(r.best_top1)});
    }
  }
  std::printf(
      "\nReading: EMA evaluation costs nothing on the wire and typically "
      "matches or improves the best accuracy at every delta.\n");
  return 0;
}
