// Fig. 1b: FedAvg accuracy on IID vs non-IID data (10 workers; CIFAR10 with
// 1 label/worker on ResNet101, CIFAR100 with 10 labels/worker on VGG11;
// C=1, E=0.1).
//
// Paper result: non-IID shards cost substantial accuracy under FedAvg.
#include "bench_common.hpp"

using namespace selsync;
using namespace selsync::bench;

namespace {

/// Harder variant of a synthetic task: with well-separated clusters,
/// averaging single-label experts hides the non-IID damage (see
/// tests/integration/noniid_test.cpp for the same calibration).
SyntheticClassData hard_data(size_t classes, uint64_t seed) {
  SyntheticClassConfig cfg;
  cfg.train_samples = 3000;
  cfg.test_samples = 600;
  cfg.classes = classes;
  cfg.feature_dim = 32;
  cfg.class_separation = 1.8;
  cfg.noise_stddev = 1.2;
  cfg.seed = seed;
  return make_synthetic_classification(cfg);
}

}  // namespace

int main() {
  print_banner("Fig. 1b — FedAvg: IID vs non-IID data (10 workers)",
               "non-IID label-skewed shards lose significant accuracy");

  CsvWriter csv(results_dir() + "/fig1b_fedavg_noniid.csv",
                {"workload", "labels_per_worker", "distribution", "epoch",
                 "top1"});

  struct Case {
    const char* name;
    size_t classes;
    size_t labels_per_worker;
    uint64_t seed;
  };
  // The paper's pairs: ResNet101/CIFAR10 (1 label/worker) and VGG11/CIFAR100
  // (10 labels/worker).
  const std::vector<Case> cases{{"ResNet101/CIFAR10", 10, 1, 31},
                                {"VGG11/CIFAR100", 20, 10, 32}};

  for (const Case& c : cases) {
    const SyntheticClassData data = hard_data(c.classes, c.seed);
    for (const bool noniid : {false, true}) {
      TrainJob job;
      job.strategy = StrategyKind::kFedAvg;
      job.workers = 10;
      job.batch_size = 16;
      job.max_iterations = 600;
      job.eval_interval = 50;
      job.train_data = data.train;
      job.test_data = data.test;
      job.partition =
          noniid ? PartitionScheme::kNonIidLabel : PartitionScheme::kSelSync;
      job.labels_per_worker = c.labels_per_worker;
      const size_t classes = c.classes;
      job.model_factory = [classes](uint64_t seed) {
        ClassifierConfig cfg;
        cfg.input_dim = 32;
        cfg.classes = classes;
        cfg.hidden = 32;
        cfg.resnet_blocks = 2;
        return make_resnet_mlp(cfg, seed);
      };
      job.optimizer_factory = [] {
        return std::make_unique<Sgd>(std::make_shared<ConstantLr>(0.05),
                                     SgdOptions{.momentum = 0.9});
      };
      // Paper setting (C=1, E=0.1) scaled to our steps/epoch: aggregate once
      // per epoch so local drift is visible at this dataset size.
      job.fedavg = {1.0, 1.0};

      const TrainResult r = run_training(job);
      std::printf("%-20s %-8s best-top1 = %.3f (LSSR %.2f)\n", c.name,
                  noniid ? "non-IID" : "IID", r.best_top1, r.lssr());
      for (const EvalPoint& pt : r.eval_history)
        csv.row({c.name, std::to_string(c.labels_per_worker),
                 noniid ? "noniid" : "iid", CsvWriter::format_double(pt.epoch),
                 CsvWriter::format_double(pt.top1)});
    }
  }

  std::printf("\nExpected shape: the non-IID row trails its IID twin.\n");
  return 0;
}
