// Fig. 8a companion: per-step synchronization time under the sliced data
// plane (--slices N --overlap on|off), for the four paper models at the
// paper's 16 workers on the 5 Gbps network.
//
// P3's claim (PAPERS.md): partitioning the payload into layer-aligned
// priority slices and emitting them output-first lets transfer start while
// backward is still producing the remaining gradients, so the *visible*
// (post-backward) sync time drops. Slicing without overlap only adds
// per-round latency, so the off position is the honest baseline, and the
// input-first emission order is the anti-priority control that hides
// nothing.
//
// Two sweeps:
//  1. The model grid — each paper model at its real architecture depth.
//    PaperModelProfile carries aggregate parameter counts only, so each
//    model gets a synthetic even per-layer split at its architecture depth
//    (ResNet101: 104 conv/fc layers, Transformer: ~48 blocks' worth,
//    VGG11: 11, AlexNet: 8). How much a model can hide mixes two effects:
//    depth (finer slices ship earlier) and its compute/comm ratio (a long
//    backward is a big window; AlexNet's short one is not).
//  2. The depth isolation sweep — ResNet101's profile re-partitioned at
//    synthetic depths 2..32 with one slice per layer. Compute and transfer
//    are held fixed, so the overlap win's growth is attributable to depth
//    alone: the acceptance shape check.
#include "bench_common.hpp"

#include <algorithm>
#include <vector>

#include "comm/comm_backend.hpp"
#include "comm/slice_schedule.hpp"
#include "core/time_model.hpp"

using namespace selsync;
using namespace selsync::bench;

namespace {

constexpr size_t kWorkers = 16;
constexpr size_t kBatch = 32;

struct DepthModel {
  PaperModelProfile profile;
  size_t depth;  // layer count of the real architecture
};

std::vector<size_t> even_layer_split(double param_count, size_t depth) {
  const size_t total = static_cast<size_t>(param_count);
  std::vector<size_t> layers(depth, total / depth);
  layers.back() += total - (total / depth) * depth;
  return layers;
}

double hidden_pct(const SyncCost& cost) {
  const double pct = cost.transfer_s > 0.0
                         ? 100.0 * cost.overlap_saved_s / cost.transfer_s
                         : 0.0;
  return pct == 0.0 ? 0.0 : pct;  // normalize -0.0 in the printed grid
}

}  // namespace

int main() {
  print_banner("Fig. 8a companion — sliced sync with comm/compute overlap",
               "visible sync time drops with --overlap on; the win grows "
               "with model depth (P3 priority slicing)");

  const std::vector<DepthModel> models = {
      {paper_alexnet(), 8},
      {paper_vgg11(), 11},
      {paper_transformer(), 48},
      {paper_resnet101(), 104},
  };
  const std::vector<size_t> slice_grid{1, 2, 4, 8, 16};

  CommBackendConfig config;
  config.kind = BackendKind::kRing;
  config.workers = kWorkers;
  config.topology = Topology::kRingAllreduce;
  const auto backend = make_comm_backend(config);

  CsvWriter csv(results_dir() + "/fig8a_overlap_sweep.csv",
                {"model", "depth", "slices", "overlap", "order", "backward_ms",
                 "transfer_ms", "saved_ms", "visible_sync_ms", "hidden_pct"});

  std::printf("%-12s %6s %7s %9s %12s %12s %10s\n", "model", "depth",
              "slices", "overlap", "transfer_ms", "visible_ms", "hidden_%");

  // Acceptance check 1: on ResNet101, overlap-on must beat the
  // non-overlapped baseline at every slice count above 1.
  bool resnet_overlap_wins = true;

  for (const DepthModel& m : models) {
    const StepTimeModel tm(m.profile, device_v100(), paper_network_5gbps(),
                           Topology::kRingAllreduce, kWorkers);
    const double backward = tm.backward_time(kBatch);
    const auto layers = even_layer_split(m.profile.param_count, m.depth);
    size_t last_emitted = 0;  // schedules saturate at the layer count

    for (size_t slices : slice_grid) {
      const auto sched =
          slices == 1
              ? SliceSchedule::single(
                    static_cast<size_t>(m.profile.param_count))
              : SliceSchedule::build(layers, slices,
                                     SliceScheduleKind::kOutputFirst);
      if (sched.size() == last_emitted) continue;
      last_emitted = sched.size();
      SyncCost off_cost;
      for (const bool overlap : {false, true}) {
        if (overlap && slices == 1) continue;  // nothing ships early
        SyncCost cost;
        tm.price_sync(cost, *backend, sched, overlap, backward);
        if (!overlap) off_cost = cost;
        const double visible_ms = 1e3 * cost.round_time();
        if (overlap && m.profile.name == "ResNet101")
          resnet_overlap_wins =
              resnet_overlap_wins && cost.round_time() < off_cost.round_time();
        std::printf("%-12s %6zu %7zu %9s %12.1f %12.1f %10.1f\n",
                    m.profile.name.c_str(), m.depth, sched.size(),
                    overlap ? "on" : "off", 1e3 * cost.transfer_s, visible_ms,
                    hidden_pct(cost));
        csv.row({m.profile.name, std::to_string(m.depth),
                 std::to_string(sched.size()), overlap ? "on" : "off",
                 "output-first", CsvWriter::format_double(1e3 * backward),
                 CsvWriter::format_double(1e3 * cost.transfer_s),
                 CsvWriter::format_double(1e3 * cost.overlap_saved_s),
                 CsvWriter::format_double(visible_ms),
                 CsvWriter::format_double(hidden_pct(cost))});
      }
    }

    // The anti-priority control: input-first emission hides nothing (its
    // first slice waits for the whole backward).
    {
      const auto anti = SliceSchedule::build(
          layers, std::min(slice_grid.back(), m.depth),
          SliceScheduleKind::kInputFirst);
      SyncCost cost;
      tm.price_sync(cost, *backend, anti, /*overlap=*/true, backward);
      std::printf("%-12s %6zu %7zu %9s %12.1f %12.1f %10.1f  (input-first)\n",
                  m.profile.name.c_str(), m.depth, anti.size(), "on",
                  1e3 * cost.transfer_s, 1e3 * cost.round_time(),
                  hidden_pct(cost));
      csv.row({m.profile.name, std::to_string(m.depth),
               std::to_string(anti.size()), "on", "input-first",
               CsvWriter::format_double(1e3 * backward),
               CsvWriter::format_double(1e3 * cost.transfer_s),
               CsvWriter::format_double(1e3 * cost.overlap_saved_s),
               CsvWriter::format_double(1e3 * cost.round_time()),
               CsvWriter::format_double(hidden_pct(cost))});
    }
  }

  // Acceptance check 2 — depth isolation: ResNet101's profile (fixed
  // compute, fixed payload) re-partitioned at synthetic depths with one
  // slice per layer. A deeper pipeline ships its first slice earlier and
  // queues the rest more finely, so the overlap saving must grow
  // strictly with depth.
  CsvWriter depth_csv(results_dir() + "/fig8a_overlap_depth_sweep.csv",
                      {"depth", "saved_ms", "visible_sync_ms"});
  const PaperModelProfile& resnet = models.back().profile;
  const StepTimeModel tm(resnet, device_v100(), paper_network_5gbps(),
                         Topology::kRingAllreduce, kWorkers);
  const double backward = tm.backward_time(kBatch);
  std::printf("\nResNet101 profile at synthetic depths, one slice per layer "
              "(overlap on):\n");
  std::printf("%-8s %10s %12s\n", "depth", "saved_ms", "visible_ms");
  std::vector<double> saved_by_depth;
  for (size_t depth : {size_t{2}, size_t{4}, size_t{8}, size_t{16},
                       size_t{32}}) {
    const auto sched = SliceSchedule::build(
        even_layer_split(resnet.param_count, depth), depth,
        SliceScheduleKind::kOutputFirst);
    SyncCost cost;
    tm.price_sync(cost, *backend, sched, /*overlap=*/true, backward);
    saved_by_depth.push_back(cost.overlap_saved_s);
    std::printf("%-8zu %10.1f %12.1f\n", depth, 1e3 * cost.overlap_saved_s,
                1e3 * cost.round_time());
    depth_csv.row({std::to_string(depth),
                   CsvWriter::format_double(1e3 * cost.overlap_saved_s),
                   CsvWriter::format_double(1e3 * cost.round_time())});
  }
  bool depth_monotone = true;
  for (size_t i = 0; i + 1 < saved_by_depth.size(); ++i)
    depth_monotone = depth_monotone && saved_by_depth[i] < saved_by_depth[i + 1];

  std::printf("\nShape checks: ResNet101 overlap-on strictly beats "
              "overlap-off at every slice count -> %s; overlap saving "
              "strictly grows with depth at fixed compute/payload -> %s\n",
              resnet_overlap_wins ? "yes" : "NO",
              depth_monotone ? "yes" : "NO");
  std::printf(
      "Full grid (incl. the input-first anti-priority control) in %s\n",
      (results_dir() + "/fig8a_overlap_sweep.csv").c_str());
  return (resnet_overlap_wins && depth_monotone) ? 0 : 1;
}
