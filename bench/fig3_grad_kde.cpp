// Fig. 3: kernel density estimates of one layer's gradients early vs late
// in training (ResNet101 layer4_1_conv1 at epochs 1/50; Transformer
// encoder norm1 at epochs 1/4).
//
// Paper result: gradients are volatile and spread out early, then shrink
// and concentrate around 0 as training converges.
//
// The paper's models interpolate their training sets (train loss -> ~0), so
// late gradients collapse; this bench therefore uses easy synthetic
// variants the scaled-down models can interpolate too.
#include "bench_common.hpp"

#include <cmath>

#include "stats/kde.hpp"
#include "nn/transformer_lm.hpp"

using namespace selsync;
using namespace selsync::bench;

namespace {

struct Probe {
  std::string name;
  std::unique_ptr<Model> model;
  std::unique_ptr<Optimizer> optimizer;
  std::unique_ptr<ShardLoader> loader;
  size_t param_index;  // which parameter tensor's gradients to inspect
  size_t steps_per_epoch;
};

Probe make_resnet_probe() {
  SyntheticClassConfig cfg;
  cfg.train_samples = 512;  // small + well-separated: interpolatable
  cfg.test_samples = 64;
  cfg.classes = 10;
  cfg.feature_dim = 48;
  cfg.class_separation = 4.0;
  cfg.noise_stddev = 0.5;
  cfg.seed = 51;
  auto data = make_synthetic_classification(cfg);

  Probe p;
  p.name = "ResNet101";
  ClassifierConfig mc;
  mc.input_dim = 48;
  mc.classes = 10;
  mc.hidden = 48;
  mc.resnet_blocks = 3;
  p.model = make_resnet_mlp(mc, 1);
  p.optimizer = std::make_unique<Sgd>(std::make_shared<ConstantLr>(0.05),
                                      SgdOptions{.momentum = 0.9});
  std::vector<size_t> order(data.train->size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  p.loader = std::make_unique<ShardLoader>(data.train, order, 32);
  p.param_index = 4;  // a residual-block weight (mid-network)
  p.steps_per_epoch = data.train->size() / 32;
  return p;
}

Probe make_transformer_probe() {
  SyntheticTextConfig cfg;
  cfg.train_tokens = 2000;  // short, highly regular stream: interpolatable
  cfg.test_tokens = 500;
  cfg.vocab = 32;
  cfg.seq_len = 12;
  cfg.branching = 2;
  cfg.temperature = 0.05;
  cfg.seed = 52;
  auto data = make_synthetic_text(cfg);

  Probe p;
  p.name = "Transformer";
  TransformerConfig tc;
  tc.vocab = 32;
  tc.model_dim = 24;
  tc.ff_dim = 48;
  tc.num_heads = 2;
  tc.num_layers = 2;
  tc.seq_len = 12;
  tc.dropout = 0.0f;
  p.model = std::make_unique<TransformerLM>(tc, 1);
  p.optimizer = std::make_unique<Adam>(std::make_shared<ConstantLr>(3e-3));
  std::vector<size_t> order(data.train->size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  p.loader = std::make_unique<ShardLoader>(data.train, order, 4);
  p.param_index = 5;  // encoder-layer projection weight (mid-network)
  p.steps_per_epoch = data.train->size() / 4;
  return p;
}

std::vector<float> layer_grads(Probe& p) {
  p.model->train_step(p.loader->next_batch());
  const Param* param = p.model->params().at(p.param_index);
  return {param->grad.data(), param->grad.data() + param->grad.size()};
}

void run_probe(Probe p, uint64_t early_step, uint64_t late_step,
               CsvWriter& csv) {
  std::vector<float> early, late;
  for (uint64_t it = 0; it <= late_step; ++it) {
    if (it == early_step) early = layer_grads(p);
    if (it == late_step) {
      late = layer_grads(p);
      break;
    }
    p.model->train_step(p.loader->next_batch());
    p.optimizer->step(p.model->params(), it,
                      static_cast<double>(it) / p.steps_per_epoch);
  }

  auto describe = [&](const char* phase, const std::vector<float>& g,
                      uint64_t step) {
    const KdeResult kde = gaussian_kde(g, 96);
    double rms = 0.0;
    for (float v : g) rms += static_cast<double>(v) * v;
    rms = std::sqrt(rms / g.size());
    std::printf("  %-6s (step %5llu): grad RMS %.3e, KDE bandwidth %.3e\n",
                phase, static_cast<unsigned long long>(step), rms,
                kde.bandwidth);
    for (size_t i = 0; i < kde.grid.size(); ++i)
      csv.row({p.name, phase, CsvWriter::format_double(kde.grid[i]),
               CsvWriter::format_double(kde.density[i])});
    return rms;
  };

  std::printf("%s (mid-network layer gradients):\n", p.name.c_str());
  const double early_rms = describe("early", early, early_step);
  const double late_rms = describe("late", late, late_step);
  std::printf("  shrinkage: late RMS is %.1f%% of early RMS %s\n",
              100.0 * late_rms / early_rms,
              late_rms < 0.7 * early_rms
                  ? "(gradients saturate, as published)"
                  : "(weaker than published)");
}

}  // namespace

int main() {
  print_banner("Fig. 3 — gradient KDE early vs late in training",
               "gradient distributions concentrate near 0 as training "
               "progresses");

  CsvWriter csv(results_dir() + "/fig3_grad_kde.csv",
                {"workload", "phase", "grad_value", "density"});

  // Paper epochs 1 vs 50 (ResNet101) and 1 vs 4 (Transformer), scaled to
  // our steps-per-epoch.
  run_probe(make_resnet_probe(), 16, 2400, csv);
  run_probe(make_transformer_probe(), 16, 2500, csv);
  return 0;
}
