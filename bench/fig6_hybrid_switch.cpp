// Sync-Switch-style hybrid schedule (DESIGN.md §14): BSP for the volatile
// early iterations, then a SyncPlan switch to SelSync once the trajectory
// settles. Time-to-target on ResNet101@16 is the scoreboard — the hybrid
// must beat BOTH pure policies in modeled time, reproducing Sync-Switch's
// core result on top of the paper's δ dial:
//
//   - pure BSP pays the full allreduce every iteration, including the long
//     calm tail where Δ(g) says the syncs buy nothing;
//   - pure SelSync skips syncs from iteration 0, and the local steps it
//     takes while gradients are still changing fast cost it statistical
//     efficiency exactly when it matters most;
//   - the hybrid takes BSP's clean warmup trajectory, then spends the tail
//     at SelSync's communication price.
//
// Exit status is the acceptance gate: nonzero if the hybrid fails to reach
// the target or fails to beat either pure policy.
#include "bench_common.hpp"

#include "core/sync_plan.hpp"

using namespace selsync;
using namespace selsync::bench;

namespace {

struct Outcome {
  std::string name;
  TrainResult result;
};

Outcome run_policy(const std::string& name, TrainJob job) {
  Outcome out{name, run_training(job)};
  std::printf("%-18s %10llu %8.3f %8.3f %12.1f %9s\n", name.c_str(),
              static_cast<unsigned long long>(out.result.iterations),
              out.result.lssr(), out.result.final_eval.top1,
              out.result.sim_time_s,
              out.result.reached_target ? "yes" : "NO");
  return out;
}

}  // namespace

int main() {
  print_banner(
      "Fig. 6 companion — BSP -> SelSync hybrid via a SyncPlan switch",
      "the hybrid reaches the accuracy target in less modeled time than "
      "either pure policy (Sync-Switch, PAPERS.md)");

  const Workload w = workload_resnet();
  constexpr size_t kWorkers = 16;
  constexpr uint64_t kBudget = 600;
  constexpr uint64_t kSwitchAt = 10;  // end of the volatile warmup
  // Paper δ = 0.35 on fig6's dial, mapped onto this model scale — high
  // enough that a cold SelSync start wanders for ~200 iterations before it
  // settles above the target, which is exactly the window the BSP warmup
  // removes.
  const double kDelta = mapped_delta("ResNet101", 0.35);
  constexpr double kTargetTop1 = 0.55;

  const auto base = [&](StrategyKind strategy) {
    TrainJob job = make_job(w, strategy, kWorkers, kBudget);
    job.eval_interval = 25;  // time-to-target resolution
    job.target_top1 = kTargetTop1;
    job.selsync.delta = kDelta;
    return job;
  };

  std::printf("%-18s %10s %8s %8s %12s %9s\n", "policy", "iters", "LSSR",
              "top1", "sim time[s]", "target?");
  const Outcome bsp = run_policy("pure-bsp", base(StrategyKind::kBsp));
  const Outcome selsync =
      run_policy("pure-selsync", base(StrategyKind::kSelSync));

  TrainJob hybrid_job = base(StrategyKind::kBsp);
  SyncPhase to_selsync;
  to_selsync.trigger.kind = SwitchTriggerKind::kAtIteration;
  to_selsync.trigger.at_iteration = kSwitchAt;
  to_selsync.strategy = StrategyKind::kSelSync;
  hybrid_job.sync_plan.phases.push_back(to_selsync);
  const Outcome hybrid = run_policy("hybrid-bsp-selsync", hybrid_job);

  // Informational row: the same hybrid with the boundary picked by the
  // cluster's own Δ(g) statistic instead of a fixed iteration — the
  // adaptive trigger the CLI exposes as --switch-on-gradchange.
  TrainJob adaptive_job = base(StrategyKind::kBsp);
  SyncPhase on_calm;
  on_calm.trigger.kind = SwitchTriggerKind::kOnGradChange;
  on_calm.trigger.gradchange_below = 0.25;
  on_calm.trigger.min_iteration = 50;
  on_calm.strategy = StrategyKind::kSelSync;
  adaptive_job.sync_plan.phases.push_back(on_calm);
  const Outcome adaptive = run_policy("hybrid-gradchange", adaptive_job);

  CsvWriter csv(results_dir() + "/fig6_hybrid_switch.csv",
                {"policy", "iterations", "lssr", "top1", "sim_time_s",
                 "reached_target"});
  for (const Outcome* o : {&bsp, &selsync, &hybrid, &adaptive})
    csv.row({o->name, std::to_string(o->result.iterations),
             CsvWriter::format_double(o->result.lssr()),
             CsvWriter::format_double(o->result.final_eval.top1),
             CsvWriter::format_double(o->result.sim_time_s),
             o->result.reached_target ? "1" : "0"});

  std::printf(
      "\nhybrid switches BSP -> SelSync (delta=%.2g) at iteration %llu; "
      "target top-1 %.2f\n",
      kDelta, static_cast<unsigned long long>(kSwitchAt), kTargetTop1);

  bool ok = true;
  if (!hybrid.result.reached_target) {
    std::printf("FAIL: hybrid never reached the target\n");
    ok = false;
  }
  if (hybrid.result.sim_time_s >= bsp.result.sim_time_s) {
    std::printf("FAIL: hybrid (%.1fs) is not faster than pure BSP (%.1fs)\n",
                hybrid.result.sim_time_s, bsp.result.sim_time_s);
    ok = false;
  }
  if (hybrid.result.sim_time_s >= selsync.result.sim_time_s) {
    std::printf(
        "FAIL: hybrid (%.1fs) is not faster than pure SelSync (%.1fs)\n",
        hybrid.result.sim_time_s, selsync.result.sim_time_s);
    ok = false;
  }
  if (ok)
    std::printf(
        "OK: hybrid beats pure BSP by %.1fs and pure SelSync by %.1fs of "
        "modeled time\n",
        bsp.result.sim_time_s - hybrid.result.sim_time_s,
        selsync.result.sim_time_s - hybrid.result.sim_time_s);
  return ok ? 0 : 1;
}
