// Table I: the paper's headline comparison — BSP, FedAvg (4 configs),
// SSP (2 staleness settings) and SelSync (2 δ settings) across the four
// workloads: iterations to convergence, LSSR, final accuracy/perplexity,
// convergence difference vs BSP, and overall speedup.
//
// Paper result (shape): SelSync reaches same-or-better accuracy than BSP on
// every model with high LSSR, yielding the largest speedups on
// communication-heavy models (up to ~14x on VGG11); FedAvg only matches BSP
// with full participation on over-parameterized models; SSP wins on shallow
// AlexNet but suffers staleness on deep ResNet101.
//
// Methodology notes (EXPERIMENTS.md): convergence = first evaluation within
// tolerance of the run's own best; speedup = BSP's simulated time to
// convergence / the method's, reported only when the method reaches BSP's
// quality; δ values are the paper's scaled by 1/2 for our compressed Δ(g_i)
// distribution.
#include "bench_common.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <optional>

using namespace selsync;
using namespace selsync::bench;

namespace {

struct MethodSpec {
  std::string label;
  StrategyKind strategy;
  FedAvgConfig fedavg;
  SspConfig ssp;
  double delta = 0.0;
};

struct Row {
  std::string method;
  uint64_t conv_iterations = 0;
  double lssr = -1.0;  // -1 = not applicable (SSP)
  double metric = 0.0;
  double conv_time_s = 0.0;
  bool outperforms_bsp = false;
  bool diverged = false;
};

/// First eval point achieving 95% of the run's total improvement over its
/// first evaluation — scale-free, robust to flat early plateaus.
EvalPoint convergence_point(const Workload& w, const TrainResult& r) {
  const double initial = primary_metric(w, r.eval_history.front());
  double best = initial;
  for (const EvalPoint& pt : r.eval_history) {
    const double m = primary_metric(w, pt);
    if (metric_improves(w, m, best)) best = m;
  }
  auto improvement = [&](double m) {
    return w.is_lm ? initial - m : m - initial;
  };
  const double target = 0.95 * improvement(best);
  for (const EvalPoint& pt : r.eval_history)
    if (improvement(primary_metric(w, pt)) >= target) return pt;
  return r.eval_history.back();
}

double best_metric(const Workload& w, const TrainResult& r) {
  return w.is_lm ? r.best_perplexity
                 : (w.top5_metric ? r.best_top5 : r.best_top1);
}

}  // namespace

int main() {
  print_banner(
      "Table I — BSP / FedAvg / SSP / SelSync across all four workloads",
      "SelSync matches-or-beats BSP everywhere with high LSSR; biggest "
      "speedup on the most communication-bound model");

  CsvWriter csv(results_dir() + "/table1_comparison.csv",
                {"workload", "method", "iterations", "lssr", "metric",
                 "conv_diff", "outperforms_bsp", "speedup"});

  // The paper runs δ ∈ {0.3, 0.5} for every model; Δ(g_i) scales differ
  // across our scaled-down model families, so each workload maps those two
  // settings onto its own Δ distribution such that the resulting LSSR lands
  // in the published 0.73-0.97 band (the mapping is recorded in
  // EXPERIMENTS.md).
  auto deltas_for = [](const std::string& workload) {
    return std::pair<double, double>{mapped_delta(workload, 0.3),
                                     mapped_delta(workload, 0.5)};
  };

  const std::vector<MethodSpec> methods{
      {"BSP", StrategyKind::kBsp, {}, {}, 0.0},
      {"FedAvg (1, 0.25)", StrategyKind::kFedAvg, {1.0, 0.25}, {}, 0.0},
      {"FedAvg (1, 0.125)", StrategyKind::kFedAvg, {1.0, 0.125}, {}, 0.0},
      {"FedAvg (0.5, 0.25)", StrategyKind::kFedAvg, {0.5, 0.25}, {}, 0.0},
      {"FedAvg (0.5, 0.125)", StrategyKind::kFedAvg, {0.5, 0.125}, {}, 0.0},
      {"SSP s=100", StrategyKind::kSsp, {}, {100}, 0.0},
      {"SSP s=200", StrategyKind::kSsp, {}, {200}, 0.0},
      {"SelSync d=0.3", StrategyKind::kSelSync, {}, {}, -1.0},  // 1st mapped δ
      {"SelSync d=0.5", StrategyKind::kSelSync, {}, {}, -2.0}};  // 2nd mapped δ

  // Optional filter for development: TABLE1_WORKLOAD=ResNet101 runs one
  // workload only.
  const char* filter = std::getenv("TABLE1_WORKLOAD");

  for (const Workload& w : all_workloads()) {
    if (filter && w.name != filter) continue;
    std::printf("\n%s (%s; higher is %s)\n", w.name.c_str(), metric_name(w),
                w.is_lm ? "worse" : "better");
    std::printf("%-20s %9s %7s %9s %10s %6s %9s\n", "method", "iters", "LSSR",
                metric_name(w), "conv.diff", "beats", "speedup");

    std::vector<Row> rows;
    double bsp_metric = 0.0, bsp_time = 0.0;
    // Semi-synchronous methods need a longer tail than BSP; the paper's own
    // Transformer runs take 1.4-1.6x more SelSync iterations (Table I), so
    // the LM workload gets double budget.
    const uint64_t budget = w.is_lm ? 1400 : 700;
    const auto [delta_lo, delta_hi] = deltas_for(w.name);

    for (const MethodSpec& m : methods) {
      TrainJob job = make_job(w, m.strategy, 16, budget);
      job.eval_interval = 25;
      job.fedavg = m.fedavg;
      job.ssp = m.ssp;
      job.selsync.delta =
          m.delta == -1.0 ? delta_lo : (m.delta == -2.0 ? delta_hi : m.delta);
      const TrainResult r = run_training(job);

      Row row;
      row.method = m.label;
      const EvalPoint conv = convergence_point(w, r);
      row.conv_iterations = conv.iteration;
      row.conv_time_s = conv.sim_time_s;
      row.lssr = r.lssr_applicable ? r.lssr() : -1.0;
      row.metric = best_metric(w, r);
      row.diverged = r.diverged;
      if (m.strategy == StrategyKind::kBsp) {
        bsp_metric = row.metric;
        bsp_time = row.conv_time_s;
        row.outperforms_bsp = false;
      } else {
        row.outperforms_bsp =
            !row.diverged &&
            (w.is_lm ? row.metric <= bsp_metric * 1.01
                     : row.metric >= bsp_metric - 0.005);
      }
      rows.push_back(row);
    }

    for (const Row& row : rows) {
      const bool is_bsp = row.method == "BSP";
      const double conv_diff =
          w.is_lm ? bsp_metric - row.metric : row.metric - bsp_metric;
      std::string lssr_cell =
          row.lssr < 0 ? "-" : CsvWriter::format_double(row.lssr);
      std::string speedup_cell = "-";
      if (is_bsp) {
        speedup_cell = "1x";
      } else if (row.outperforms_bsp && row.conv_time_s > 0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2fx",
                      bsp_time / row.conv_time_s);
        speedup_cell = buf;
      }
      std::printf("%-20s %9llu %7s %9.3f %+10.3f %6s %9s\n",
                  row.method.c_str(),
                  static_cast<unsigned long long>(row.conv_iterations),
                  lssr_cell.c_str(), row.metric, is_bsp ? 0.0 : conv_diff,
                  is_bsp ? "n/a"
                         : (row.diverged ? "div"
                                         : (row.outperforms_bsp ? "yes" : "no")),
                  speedup_cell.c_str());
      csv.row({w.name, row.method, std::to_string(row.conv_iterations),
               lssr_cell, CsvWriter::format_double(row.metric),
               CsvWriter::format_double(is_bsp ? 0.0 : conv_diff),
               row.outperforms_bsp ? "1" : "0", speedup_cell});
    }
  }

  std::printf(
      "\nShape checks vs the paper: (1) SelSync rows say 'yes' with LSSR "
      "well above 0; (2) FedAvg (0.5, *) rows degrade vs (1, *); (3) the "
      "largest SelSync speedup lands on the most communication-bound "
      "model.\n");
  return 0;
}
