#include "bench_common.hpp"

namespace selsync::bench {

double mapped_delta(const std::string& workload, double paper_delta) {
  // Per-workload scale factors calibrated so the paper's δ ∈ {0.25, 0.3,
  // 0.5} land in the published LSSR band (0.73-0.97) on our Δ
  // distributions.
  double scale = 0.5;  // ResNet101, Transformer
  if (workload == "VGG11") scale = 1.0;
  if (workload == "AlexNet") scale = 0.33;
  return paper_delta * scale;
}

std::string results_dir() {
  const std::string dir = "bench_results";
  std::filesystem::create_directories(dir);
  return dir;
}

void print_banner(const std::string& figure, const std::string& claim) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("============================================================\n");
}

}  // namespace selsync::bench
