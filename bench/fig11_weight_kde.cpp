// Fig. 11: distribution (KDE) of one layer's weights at two epochs, for
// three independent runs: BSP, SelSync-PA and SelSync-GA.
//
// Paper result: BSP and SelSync-PA have similar weight distributions at
// both epochs; SelSync-GA drifts apart (spread early, over-narrow late) —
// PA bounds the local/global divergence, GA does not.
#include "bench_common.hpp"

#include <cmath>
#include <map>

#include "stats/kde.hpp"

using namespace selsync;
using namespace selsync::bench;

int main() {
  print_banner("Fig. 11 — weight KDE: BSP vs SelSync-PA vs SelSync-GA",
               "PA's weight distribution stays close to BSP's; GA's drifts");

  CsvWriter csv(results_dir() + "/fig11_weight_kde.csv",
                {"method", "epoch", "weight", "density"});

  const Workload w = workload_resnet();
  // The paper snapshots epochs 25 and 50 of ~150; our runs span ~40 epochs,
  // so snapshot at the same relative positions.
  const std::vector<double> snapshot_epochs{6.0, 12.0};

  struct Run {
    const char* name;
    StrategyKind strategy;
    AggregationMode agg;
  };
  const std::vector<Run> runs{
      {"BSP", StrategyKind::kBsp, AggregationMode::kGradients},
      {"SelSync-PA", StrategyKind::kSelSync, AggregationMode::kParameters},
      {"SelSync-GA", StrategyKind::kSelSync, AggregationMode::kGradients}};

  std::map<std::string, std::map<double, std::vector<float>>> snaps;
  for (const Run& run : runs) {
    TrainJob job = make_job(w, run.strategy, 16, 400);
    job.selsync.delta = mapped_delta(w.name, 0.25);
    job.selsync.aggregation = run.agg;
    job.snapshot_epochs = snapshot_epochs;
    const TrainResult r = run_training(job);
    snaps[run.name] = r.weight_snapshots;
  }

  for (double epoch : snapshot_epochs) {
    std::printf("\nEpoch %.0f:\n", epoch);
    for (const Run& run : runs) {
      const auto& weights = snaps[run.name].at(epoch);
      const KdeResult kde = gaussian_kde(weights, 96);
      for (size_t i = 0; i < kde.grid.size(); ++i)
        csv.row({run.name, CsvWriter::format_double(epoch),
                 CsvWriter::format_double(kde.grid[i]),
                 CsvWriter::format_double(kde.density[i])});
      double rms = 0;
      for (float v : weights) rms += static_cast<double>(v) * v;
      std::printf("  %-10s weight RMS %.4f, KDE bandwidth %.4f\n", run.name,
                  std::sqrt(rms / weights.size()), kde.bandwidth);
    }
    const double d_pa = kde_l1_distance(snaps["BSP"].at(epoch),
                                        snaps["SelSync-PA"].at(epoch));
    const double d_ga = kde_l1_distance(snaps["BSP"].at(epoch),
                                        snaps["SelSync-GA"].at(epoch));
    std::printf("  L1 distance to BSP's distribution:  PA %.3f  vs  GA %.3f"
                "  -> %s\n",
                d_pa, d_ga,
                d_pa <= d_ga ? "PA closer to BSP (as published)"
                             : "GA closer (differs from paper)");
  }
  return 0;
}
