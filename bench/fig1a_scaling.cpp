// Fig. 1a: relative training throughput vs cluster size under PS training
// over the 5 Gbps testbed network.
//
// Paper result: throughput scales sublinearly — ResNet101 gains only ~3x
// from 1 -> 16 workers; VGG11 (507 MB of parameters) drops below 1.0x at 2
// workers because one synchronization outweighs a whole step of compute.
#include "bench_common.hpp"

#include "comm/cost_model.hpp"
#include "nn/paper_profiles.hpp"

using namespace selsync;
using namespace selsync::bench;

int main() {
  print_banner("Fig. 1a — relative throughput vs cluster size (PS, 5 Gbps)",
               "sublinear scaling; ~3x for ResNet101 at 16 workers; VGG11 "
               "below 1.0 at 2 workers");

  const CostModel cost(paper_network_5gbps());
  const DeviceProfile v100 = device_v100();
  const std::vector<size_t> sizes{1, 2, 4, 8, 16};
  // Per-worker batch sizes from the paper's recipes (§IV-A).
  auto paper_batch = [](const std::string& name) -> size_t {
    if (name == "AlexNet") return 128;
    if (name == "Transformer") return 20;
    return 32;
  };

  CsvWriter csv(results_dir() + "/fig1a_scaling.csv",
                {"model", "workers", "relative_throughput"});

  std::printf("%-12s", "workers:");
  for (size_t n : sizes) std::printf("%8zu", n);
  std::printf("\n");

  std::vector<AsciiSeries> series;
  for (const PaperModelProfile& model : all_paper_models()) {
    std::printf("%-12s", model.name.c_str());
    AsciiSeries s{model.name, {}};
    for (size_t n : sizes) {
      const double t_compute =
          compute_time_s(model, v100, static_cast<double>(paper_batch(model.name)));
      const double t_sync =
          cost.ps_sync_time(static_cast<size_t>(model.param_bytes()), n);
      // Throughput relative to 1 worker: N workers each complete a step in
      // t_c + t_s, vs t_c alone on a single GPU.
      const double relative =
          static_cast<double>(n) * t_compute / (t_compute + t_sync);
      std::printf("%8.2f", relative);
      csv.row({model.name, std::to_string(n),
               CsvWriter::format_double(relative)});
      s.y.push_back(relative);
    }
    std::printf("\n");
    series.push_back(std::move(s));
  }

  std::printf("\n%s", ascii_plot(series, 60, 14).c_str());
  std::printf("(x-axis: cluster size 1,2,4,8,16; CSV: %s/fig1a_scaling.csv)\n",
              results_dir().c_str());
  return 0;
}
