// Fig. 1a: relative training throughput vs cluster size over the 5 Gbps
// testbed network, swept across the pluggable communication backends and —
// for the parameter-server backend — across the sharded-PS tier.
//
// Paper result (PS rows): throughput scales sublinearly — ResNet101 gains
// only ~3x from 1 -> 16 workers; VGG11 (507 MB of parameters) drops below
// 1.0x at 2 workers because one synchronization outweighs a whole step of
// compute. The ring and tree rows show what the same jobs would cost on the
// bandwidth-optimal ring and the log(N) reduction tree, and the ps-kK rows
// (--ps-shards K, default sweep K in {1,2,4}) show the incast knee
// flattening as the central store splits into K independent ingest links.
#include "bench_common.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "comm/comm_backend.hpp"
#include "comm/cost_model.hpp"
#include "nn/paper_profiles.hpp"

using namespace selsync;
using namespace selsync::bench;

int main(int argc, char** argv) {
  // Optional: --ps-shards 1,2,4 overrides the sharded-PS sweep list.
  std::vector<size_t> shard_sweep{1, 2, 4};
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--ps-shards" && i + 1 < argc) {
      shard_sweep.clear();
      const std::string list = argv[++i];
      for (size_t pos = 0; pos < list.size();) {
        const size_t comma = list.find(',', pos);
        const size_t end = comma == std::string::npos ? list.size() : comma;
        shard_sweep.push_back(
            static_cast<size_t>(std::atoi(list.substr(pos, end - pos).c_str())));
        pos = end + 1;
      }
    }
  }

  print_banner(
      "Fig. 1a — relative throughput vs cluster size x backend (5 Gbps)",
      "sublinear scaling; ~3x for ResNet101 at 16 workers under PS; ring, "
      "tree and the sharded PS tier (--ps-shards) push the knee outward");

  const CostModel cost(paper_network_5gbps());
  const DeviceProfile v100 = device_v100();
  const std::vector<size_t> sizes{1, 2, 4, 8, 16};
  // Per-worker batch sizes from the paper's recipes (§IV-A).
  auto paper_batch = [](const std::string& name) -> size_t {
    if (name == "AlexNet") return 128;
    if (name == "Transformer") return 20;
    return 32;
  };

  // One pricing backend per sweep row, built through the same factory the
  // trainer uses. The PS backends need a (dummy) central store seed wide
  // enough for the shard count; only the sync_cost() account is exercised
  // here. K=1 is labeled plain "ps" — it is bit- and price-identical to the
  // pre-sharding backend.
  struct SweepBackend {
    std::string label;
    std::unique_ptr<CommBackend> backend;
  };
  std::vector<SweepBackend> backends;
  {
    CommBackendConfig config;
    config.workers = sizes.back();
    config.kind = BackendKind::kParameterServer;
    for (size_t shards : shard_sweep) {
      config.ps_shards = shards;
      config.initial_params.assign(std::max<size_t>(shards, 1), 0.0f);
      backends.push_back(
          {shards == 1 ? "ps" : "ps-k" + std::to_string(shards),
           make_comm_backend(config)});
    }
    config.initial_params.clear();
    config.ps_shards = 1;
    config.kind = BackendKind::kRing;
    config.topology = Topology::kRingAllreduce;
    backends.push_back({"ring", make_comm_backend(config)});
    config.kind = BackendKind::kTree;
    backends.push_back({"tree", make_comm_backend(config)});
  }

  CsvWriter csv(results_dir() + "/fig1a_scaling.csv",
                {"model", "backend", "workers", "relative_throughput"});

  std::vector<AsciiSeries> series;
  for (const SweepBackend& sweep : backends) {
    std::printf("--- backend: %s ---\n", sweep.label.c_str());
    std::printf("%-12s", "workers:");
    for (size_t n : sizes) std::printf("%8zu", n);
    std::printf("\n");

    for (const PaperModelProfile& model : all_paper_models()) {
      std::printf("%-12s", model.name.c_str());
      AsciiSeries s{model.name + " (" + sweep.label + ")", {}};
      for (size_t n : sizes) {
        const double t_compute = compute_time_s(
            model, v100, static_cast<double>(paper_batch(model.name)));
        const double t_sync =
            sweep.backend
                ->sync_cost(cost, static_cast<size_t>(model.param_bytes()), n)
                .transfer_s;
        // Throughput relative to 1 worker: N workers each complete a step
        // in t_c + t_s, vs t_c alone on a single GPU.
        const double relative =
            static_cast<double>(n) * t_compute / (t_compute + t_sync);
        std::printf("%8.2f", relative);
        csv.row({model.name, sweep.label, std::to_string(n),
                 CsvWriter::format_double(relative)});
        if (sweep.label == "ps") s.y.push_back(relative);
      }
      std::printf("\n");
      if (!s.y.empty()) series.push_back(std::move(s));
    }
    std::printf("\n");
  }

  std::printf("%s", ascii_plot(series, 60, 14).c_str());
  std::printf(
      "(plot: PS backend K=1, the paper's Fig. 1a; x-axis: cluster size "
      "1,2,4,8,16; all backends and shard counts in %s/fig1a_scaling.csv)\n",
      results_dir().c_str());
  return 0;
}
