// Fig. 1a: relative training throughput vs cluster size over the 5 Gbps
// testbed network, swept across the pluggable communication backends and —
// for the parameter-server backend — across the sharded-PS tier.
//
// Paper result (PS rows): throughput scales sublinearly — ResNet101 gains
// only ~3x from 1 -> 16 workers; VGG11 (507 MB of parameters) drops below
// 1.0x at 2 workers because one synchronization outweighs a whole step of
// compute. The ring and tree rows show what the same jobs would cost on the
// bandwidth-optimal ring and the log(N) reduction tree, and the ps-kK rows
// (--ps-shards K, default sweep K in {1,2,4}) show the incast knee
// flattening as the central store splits into K independent ingest links.
//
// Two modes:
//   (default)      — the analytic cost-model sweep above: no training, just
//                    sync_cost() pricing, sizes 1..16 like the paper.
//   --engine E     — run REAL run_training() jobs (SelSync vs BSP, tiny
//                    synthetic model) under engine E and report measured
//                    simulated time. `--engine des` is the headline recipe:
//                    the fiber scheduler sweeps N=128,256,512,1024 in
//                    seconds, far past where one-OS-thread-per-rank stops
//                    being a simulator and starts being a load test
//                    (`--engine threads` defaults to N=16..128 for
//                    cross-checking the two engines at overlapping sizes).
//                    Override the size list with --sizes 128,256,...
#include "bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <string>

#include "comm/comm_backend.hpp"
#include "comm/cost_model.hpp"
#include "data/synthetic.hpp"
#include "nn/paper_profiles.hpp"
#include "optim/optimizer.hpp"

using namespace selsync;
using namespace selsync::bench;

namespace {

std::vector<size_t> parse_size_list(const std::string& list) {
  std::vector<size_t> out;
  for (size_t pos = 0; pos < list.size();) {
    const size_t comma = list.find(',', pos);
    const size_t end = comma == std::string::npos ? list.size() : comma;
    out.push_back(
        static_cast<size_t>(std::atoi(list.substr(pos, end - pos).c_str())));
    pos = end + 1;
  }
  return out;
}

/// A deliberately tiny job — the point of the measured sweep is engine
/// scaling, not model quality, so compute per step is minimized while the
/// synchronization protocol (flag allgather, allreduce, Δ(g_i) policy) stays
/// the real thing. The dataset is sized so every rank owns at least one full
/// batch at the largest N.
TrainJob engine_sweep_job(StrategyKind strategy, EngineKind engine,
                          size_t workers, const SyntheticClassData& data) {
  TrainJob job;
  job.strategy = strategy;
  job.engine = engine;
  job.workers = workers;
  job.batch_size = 8;
  job.max_iterations = 16;
  job.eval_interval = 1000;  // final eval only; eval is not what we measure
  job.train_data = data.train;
  job.test_data = data.test;
  job.model_factory = [](uint64_t seed) {
    ClassifierConfig cfg;
    cfg.input_dim = 16;
    cfg.classes = 10;
    cfg.hidden = 16;
    cfg.resnet_blocks = 1;
    return make_resnet_mlp(cfg, seed);
  };
  job.optimizer_factory = [] {
    return std::make_unique<Sgd>(std::make_shared<ConstantLr>(0.05),
                                 SgdOptions{.momentum = 0.9});
  };
  job.selsync.delta = 0.5;
  return job;
}

int run_engine_sweep(EngineKind engine, std::vector<size_t> sizes) {
  if (sizes.empty())
    sizes = engine == EngineKind::kDes
                ? std::vector<size_t>{128, 256, 512, 1024}
                : std::vector<size_t>{16, 32, 64, 128};
  const size_t max_workers = *std::max_element(sizes.begin(), sizes.end());

  print_banner(
      std::string("Fig. 1a (measured) — SelSync vs BSP under the ") +
          engine_kind_name(engine) + " engine",
      "real run_training() jobs; simulated time from the StepTimeModel/"
      "SyncCost pipeline, N swept far past the paper's 16-worker testbed");

  SyntheticClassConfig data_cfg;
  data_cfg.train_samples = std::max<size_t>(max_workers * 8, 1024);
  data_cfg.test_samples = 128;
  data_cfg.classes = 10;
  data_cfg.feature_dim = 16;
  const SyntheticClassData data = make_synthetic_classification(data_cfg);

  CsvWriter csv(results_dir() + "/fig1a_engine_sweep.csv",
                {"engine", "strategy", "workers", "sim_time_s", "sync_steps",
                 "lssr", "selsync_speedup", "wall_s"});

  std::printf("%8s %-8s %12s %10s %8s %16s %8s\n", "workers", "strategy",
              "sim_time_s", "syncs", "lssr", "selsync_speedup", "wall_s");
  for (size_t n : sizes) {
    double bsp_sim = 0.0;
    for (StrategyKind strategy :
         {StrategyKind::kBsp, StrategyKind::kSelSync}) {
      const TrainJob job = engine_sweep_job(strategy, engine, n, data);
      const auto t0 = std::chrono::steady_clock::now();
      const TrainResult result = run_training(job);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      const bool is_selsync = strategy == StrategyKind::kSelSync;
      if (!is_selsync) bsp_sim = result.sim_time_s;
      const double speedup =
          is_selsync && result.sim_time_s > 0.0
              ? bsp_sim / result.sim_time_s
              : 1.0;
      std::printf("%8zu %-8s %12.2f %10llu %8.2f %16.2f %8.2f\n", n,
                  strategy_kind_name(strategy), result.sim_time_s,
                  static_cast<unsigned long long>(result.sync_steps),
                  result.lssr(), speedup, wall);
      csv.row({engine_kind_name(engine), strategy_kind_name(strategy),
               std::to_string(n), CsvWriter::format_double(result.sim_time_s),
               std::to_string(result.sync_steps),
               CsvWriter::format_double(result.lssr()),
               CsvWriter::format_double(speedup),
               CsvWriter::format_double(wall)});
    }
  }
  std::printf(
      "(selsync_speedup = BSP sim-time / SelSync sim-time at equal N; full "
      "series in %s/fig1a_engine_sweep.csv)\n",
      results_dir().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Optional: --ps-shards 1,2,4 overrides the sharded-PS sweep list;
  // --engine threads|des switches to the measured run_training() sweep,
  // --sizes overrides its cluster-size list.
  std::vector<size_t> shard_sweep{1, 2, 4};
  std::optional<EngineKind> engine;
  std::vector<size_t> sizes_override;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--ps-shards" && i + 1 < argc) {
      shard_sweep = parse_size_list(argv[++i]);
    } else if (std::string(argv[i]) == "--engine" && i + 1 < argc) {
      engine = parse_enum_flag(
          "engine", argv[++i],
          [](std::string_view name) { return engine_kind_from_name(name); },
          engine_kind_names());
    } else if (std::string(argv[i]) == "--sizes" && i + 1 < argc) {
      sizes_override = parse_size_list(argv[++i]);
    }
  }
  if (engine) return run_engine_sweep(*engine, sizes_override);

  print_banner(
      "Fig. 1a — relative throughput vs cluster size x backend (5 Gbps)",
      "sublinear scaling; ~3x for ResNet101 at 16 workers under PS; ring, "
      "tree and the sharded PS tier (--ps-shards) push the knee outward");

  const CostModel cost(paper_network_5gbps());
  const DeviceProfile v100 = device_v100();
  const std::vector<size_t> sizes{1, 2, 4, 8, 16};
  // Per-worker batch sizes from the paper's recipes (§IV-A).
  auto paper_batch = [](const std::string& name) -> size_t {
    if (name == "AlexNet") return 128;
    if (name == "Transformer") return 20;
    return 32;
  };

  // One pricing backend per sweep row, built through the same factory the
  // trainer uses. The PS backends need a (dummy) central store seed wide
  // enough for the shard count; only the sync_cost() account is exercised
  // here. K=1 is labeled plain "ps" — it is bit- and price-identical to the
  // pre-sharding backend.
  struct SweepBackend {
    std::string label;
    std::unique_ptr<CommBackend> backend;
  };
  std::vector<SweepBackend> backends;
  {
    CommBackendConfig config;
    config.workers = sizes.back();
    config.kind = BackendKind::kParameterServer;
    for (size_t shards : shard_sweep) {
      config.ps_shards = shards;
      config.initial_params.assign(std::max<size_t>(shards, 1), 0.0f);
      backends.push_back(
          {shards == 1 ? "ps" : "ps-k" + std::to_string(shards),
           make_comm_backend(config)});
    }
    config.initial_params.clear();
    config.ps_shards = 1;
    config.kind = BackendKind::kRing;
    config.topology = Topology::kRingAllreduce;
    backends.push_back({"ring", make_comm_backend(config)});
    config.kind = BackendKind::kTree;
    backends.push_back({"tree", make_comm_backend(config)});
  }

  CsvWriter csv(results_dir() + "/fig1a_scaling.csv",
                {"model", "backend", "workers", "relative_throughput"});

  std::vector<AsciiSeries> series;
  for (const SweepBackend& sweep : backends) {
    std::printf("--- backend: %s ---\n", sweep.label.c_str());
    std::printf("%-12s", "workers:");
    for (size_t n : sizes) std::printf("%8zu", n);
    std::printf("\n");

    for (const PaperModelProfile& model : all_paper_models()) {
      std::printf("%-12s", model.name.c_str());
      AsciiSeries s{model.name + " (" + sweep.label + ")", {}};
      for (size_t n : sizes) {
        const double t_compute = compute_time_s(
            model, v100, static_cast<double>(paper_batch(model.name)));
        const double t_sync =
            sweep.backend
                ->sync_cost(cost, static_cast<size_t>(model.param_bytes()), n)
                .transfer_s;
        // Throughput relative to 1 worker: N workers each complete a step
        // in t_c + t_s, vs t_c alone on a single GPU.
        const double relative =
            static_cast<double>(n) * t_compute / (t_compute + t_sync);
        std::printf("%8.2f", relative);
        csv.row({model.name, sweep.label, std::to_string(n),
                 CsvWriter::format_double(relative)});
        if (sweep.label == "ps") s.y.push_back(relative);
      }
      std::printf("\n");
      if (!s.y.empty()) series.push_back(std::move(s));
    }
    std::printf("\n");
  }

  std::printf("%s", ascii_plot(series, 60, 14).c_str());
  std::printf(
      "(plot: PS backend K=1, the paper's Fig. 1a; x-axis: cluster size "
      "1,2,4,8,16; all backends and shard counts in %s/fig1a_scaling.csv)\n",
      results_dir().c_str());
  return 0;
}
