// Fig. 1a: relative training throughput vs cluster size over the 5 Gbps
// testbed network, swept across the pluggable communication backends.
//
// Paper result (PS rows): throughput scales sublinearly — ResNet101 gains
// only ~3x from 1 -> 16 workers; VGG11 (507 MB of parameters) drops below
// 1.0x at 2 workers because one synchronization outweighs a whole step of
// compute. The ring and tree rows show what the same jobs would cost on the
// bandwidth-optimal ring and the log(N) reduction tree — the backends
// TrainJob::backend / selsync_cli --backend select at training time.
#include "bench_common.hpp"

#include "comm/comm_backend.hpp"
#include "comm/cost_model.hpp"
#include "nn/paper_profiles.hpp"

using namespace selsync;
using namespace selsync::bench;

int main() {
  print_banner(
      "Fig. 1a — relative throughput vs cluster size x backend (5 Gbps)",
      "sublinear scaling; ~3x for ResNet101 at 16 workers under PS; ring "
      "and tree backends push the knee outward");

  const CostModel cost(paper_network_5gbps());
  const DeviceProfile v100 = device_v100();
  const std::vector<size_t> sizes{1, 2, 4, 8, 16};
  // Per-worker batch sizes from the paper's recipes (§IV-A).
  auto paper_batch = [](const std::string& name) -> size_t {
    if (name == "AlexNet") return 128;
    if (name == "Transformer") return 20;
    return 32;
  };

  // One pricing backend per sweep row, built through the same factory the
  // trainer uses. The PS backend needs a (dummy) central store seed; only
  // the sync_cost() account is exercised here.
  struct SweepBackend {
    const char* label;
    std::unique_ptr<CommBackend> backend;
  };
  std::vector<SweepBackend> backends;
  {
    CommBackendConfig config;
    config.workers = sizes.back();
    config.kind = BackendKind::kParameterServer;
    config.initial_params.assign(1, 0.0f);
    backends.push_back({"ps", make_comm_backend(config)});
    config.initial_params.clear();
    config.kind = BackendKind::kRing;
    config.topology = Topology::kRingAllreduce;
    backends.push_back({"ring", make_comm_backend(config)});
    config.kind = BackendKind::kTree;
    backends.push_back({"tree", make_comm_backend(config)});
  }

  CsvWriter csv(results_dir() + "/fig1a_scaling.csv",
                {"model", "backend", "workers", "relative_throughput"});

  std::vector<AsciiSeries> series;
  for (const SweepBackend& sweep : backends) {
    std::printf("--- backend: %s ---\n", sweep.label);
    std::printf("%-12s", "workers:");
    for (size_t n : sizes) std::printf("%8zu", n);
    std::printf("\n");

    for (const PaperModelProfile& model : all_paper_models()) {
      std::printf("%-12s", model.name.c_str());
      AsciiSeries s{model.name + " (" + sweep.label + ")", {}};
      for (size_t n : sizes) {
        const double t_compute = compute_time_s(
            model, v100, static_cast<double>(paper_batch(model.name)));
        const double t_sync =
            sweep.backend
                ->sync_cost(cost, static_cast<size_t>(model.param_bytes()), n)
                .transfer_s;
        // Throughput relative to 1 worker: N workers each complete a step
        // in t_c + t_s, vs t_c alone on a single GPU.
        const double relative =
            static_cast<double>(n) * t_compute / (t_compute + t_sync);
        std::printf("%8.2f", relative);
        csv.row({model.name, sweep.label, std::to_string(n),
                 CsvWriter::format_double(relative)});
        if (sweep.label == std::string("ps")) s.y.push_back(relative);
      }
      std::printf("\n");
      if (!s.y.empty()) series.push_back(std::move(s));
    }
    std::printf("\n");
  }

  std::printf("%s", ascii_plot(series, 60, 14).c_str());
  std::printf(
      "(plot: PS backend, the paper's Fig. 1a; x-axis: cluster size "
      "1,2,4,8,16; all backends in %s/fig1a_scaling.csv)\n",
      results_dir().c_str());
  return 0;
}
