// Fig. 9: SelSync (δ=0.25, gradient aggregation) trained with SelDP vs the
// default partitioning DefDP, per workload.
//
// Paper result: SelDP reaches better test accuracy/perplexity for the same
// epochs — with mostly-local updates, DefDP workers never learn the other
// shards (ResNet101 97.6 vs 96.8; VGG11 90.9 vs 64.1; AlexNet 81.1 vs 61.2
// top-5; Transformer 92.6 vs 94.9 ppl).
//
// δ note: our scaled models have a ~2x compressed Δ(g_i) distribution, so
// the paper's δ=0.25 maps to δ=0.125 here (see EXPERIMENTS.md).
#include "bench_common.hpp"

using namespace selsync;
using namespace selsync::bench;

int main() {
  print_banner("Fig. 9 — SelSync with SelDP vs DefDP (GA, δ≈0.25 paper-scale)",
               "SelDP converges to better test performance than DefDP");

  CsvWriter csv(results_dir() + "/fig9_seldp_vs_defdp.csv",
                {"workload", "partitioning", "epoch", "metric"});

  // Print the Fig. 7 layout once, for reference.
  std::printf("Partition layouts (Fig. 7), 4-worker illustration:\n");
  std::printf("  DefDP:  worker w consumes only chunk DP_w\n");
  std::printf(
      "  SelDP:  worker w consumes DP_w, DP_{w+1}, ... (circular queue)\n\n");

  for (const Workload& w : all_workloads()) {
    std::printf("%s:\n", w.name.c_str());
    for (const PartitionScheme scheme :
         {PartitionScheme::kSelSync, PartitionScheme::kDefault}) {
      TrainJob job = make_job(w, StrategyKind::kSelSync, 16, 600);
      job.partition = scheme;
      job.selsync.delta = mapped_delta(w.name, 0.25);
      job.selsync.aggregation = AggregationMode::kGradients;  // as in Fig. 9
      const TrainResult r = run_training(job);
      const double final_metric = w.is_lm
                                      ? r.best_perplexity
                                      : (w.top5_metric ? r.best_top5
                                                       : r.best_top1);
      std::printf("  %-6s  best %s = %-8.3f (LSSR %.2f)\n",
                  partition_scheme_name(scheme), metric_name(w), final_metric,
                  r.lssr());
      for (const EvalPoint& pt : r.eval_history)
        csv.row({w.name, partition_scheme_name(scheme),
                 CsvWriter::format_double(pt.epoch),
                 CsvWriter::format_double(primary_metric(w, pt))});
    }
  }

  std::printf(
      "\nExpected shape: SelDP matches or beats DefDP on every workload "
      "(the gap widens with more labels and higher LSSR).\n");
  return 0;
}
