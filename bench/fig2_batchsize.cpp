// Fig. 2: per-iteration compute time (a) and training memory (b) vs batch
// size on a Tesla K80, for the four paper models.
//
// Paper result: both grow with batch size; ResNet101 (deepest) dominates
// compute; the Transformer OOMs at batch 64 on the 12 GB K80; AlexNet's
// ImageFolder staging inflates its memory at large batches.
#include "bench_common.hpp"

#include "nn/paper_profiles.hpp"

using namespace selsync;
using namespace selsync::bench;

int main() {
  print_banner("Fig. 2 — compute time & memory vs batch size (Tesla K80)",
               "monotone growth; Transformer OOM at b=64 on 12 GB");

  const DeviceProfile k80 = device_k80();
  const std::vector<double> batches{16, 32, 64, 128, 256, 512};

  CsvWriter csv(results_dir() + "/fig2_batchsize.csv",
                {"model", "batch", "compute_time_s", "memory_gb", "oom"});

  std::printf("\n(a) compute time per iteration [s]\n%-12s", "batch:");
  for (double b : batches) std::printf("%8.0f", b);
  std::printf("\n");
  for (const auto& model : all_paper_models()) {
    std::printf("%-12s", model.name.c_str());
    for (double b : batches)
      std::printf("%8.2f", compute_time_s(model, k80, b));
    std::printf("\n");
  }

  std::printf("\n(b) training memory [GB] (x = does not fit in 12 GB)\n%-12s",
              "batch:");
  for (double b : batches) std::printf("%8.0f", b);
  std::printf("\n");
  for (const auto& model : all_paper_models()) {
    std::printf("%-12s", model.name.c_str());
    for (double b : batches) {
      const double gb =
          training_memory_bytes(model, k80, b) / (1024.0 * 1024.0 * 1024.0);
      const bool oom = would_oom(model, k80, b);
      char cell[16];
      std::snprintf(cell, sizeof(cell), oom ? "%7.1fx" : "%7.1f ", gb);
      std::printf("%s", cell);
      csv.row({model.name, CsvWriter::format_double(b),
               CsvWriter::format_double(compute_time_s(model, k80, b)),
               CsvWriter::format_double(gb), oom ? "1" : "0"});
    }
    std::printf("\n");
  }

  std::printf(
      "\nTransformer fits at b=32 (%s) but OOMs at b=64 (%s), matching the "
      "paper.\n",
      would_oom(paper_transformer(), k80, 32) ? "NO" : "yes",
      would_oom(paper_transformer(), k80, 64) ? "yes" : "NO");
  return 0;
}
