// Ablation (DESIGN.md §5.1): Alg. 1's "any worker triggers sync" rule vs
// majority and unanimity quorums, at a fixed δ.
//
// The any-worker rule is the conservative end: it synchronizes whenever even
// one replica sees a significant gradient change, trading communication for
// statistical safety. Raising the quorum raises the LSSR (fewer syncs) and
// shifts the method toward local SGD.
#include "bench_common.hpp"

using namespace selsync;
using namespace selsync::bench;

int main() {
  print_banner("Ablation — sync trigger rule: any vs majority vs unanimity",
               "(extension; the paper fixes the any-worker rule of Alg. 1)");

  CsvWriter csv(results_dir() + "/ablation_sync_rule.csv",
                {"quorum", "delta", "lssr", "top1", "sim_time_s"});

  const Workload w = workload_resnet();
  struct Rule {
    const char* name;
    double quorum;
  };
  const std::vector<Rule> rules{
      {"any (Alg. 1)", 0.0}, {"quarter", 0.25}, {"majority", 0.5},
      {"unanimity", 1.0}};

  for (double delta : {0.1, 0.15}) {
    std::printf("\ndelta = %.2f\n%-14s %8s %8s %12s\n", delta, "rule", "LSSR",
                "top1", "sim time[s]");
    for (const Rule& rule : rules) {
      TrainJob job = make_job(w, StrategyKind::kSelSync, 16, 400);
      job.selsync.delta = delta;
      job.selsync.sync_quorum = rule.quorum;
      const TrainResult r = run_training(job);
      std::printf("%-14s %8.3f %8.3f %12.1f\n", rule.name, r.lssr(),
                  r.best_top1, r.sim_time_s);
      csv.row({CsvWriter::format_double(rule.quorum),
               CsvWriter::format_double(delta),
               CsvWriter::format_double(r.lssr()),
               CsvWriter::format_double(r.best_top1),
               CsvWriter::format_double(r.sim_time_s)});
    }
  }

  std::printf(
      "\nReading: LSSR rises (and simulated time falls) as the quorum "
      "tightens; the any-worker rule buys accuracy insurance with extra "
      "rounds.\n");
  return 0;
}
