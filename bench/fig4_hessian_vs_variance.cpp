// Fig. 4: the largest eigenvalue of the Hessian, computed every iteration,
// follows the same trajectory as first-order gradient variance — but the
// latter is vastly cheaper.
//
// Paper result: the two traces move together (critical-period detection via
// gradient variance is a sound proxy for Hessian eigenvalues).
#include "bench_common.hpp"

#include <cmath>

#include "stats/hessian.hpp"
#include "stats/variance.hpp"
#include "util/timer.hpp"

using namespace selsync;
using namespace selsync::bench;

namespace {

void trace_workload(const Workload& w, uint64_t steps, CsvWriter& csv) {
  auto model = w.model_factory(1);
  auto optimizer = w.optimizer_factory();
  ShardLoader loader(w.train, [&] {
    std::vector<size_t> order(w.train->size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    return order;
  }(), w.batch_size);

  std::vector<double> eigen_trace, var_trace;
  double eigen_seconds = 0.0, var_seconds = 0.0;
  const uint64_t steps_per_epoch = w.train->size() / w.batch_size;

  for (uint64_t it = 0; it < steps; ++it) {
    const Batch batch = loader.next_batch();

    WallTimer ht;
    HessianProbeOptions opt;
    opt.power_iterations = 4;
    const HessianProbeResult probe = hessian_top_eigenvalue(*model, batch, opt);
    eigen_seconds += ht.elapsed_s();
    eigen_trace.push_back(std::fabs(probe.top_eigenvalue));

    WallTimer vt;
    model->train_step(batch);
    const auto grads = model->get_flat_grads();
    RunningStats stats;
    for (float g : grads) stats.add(g);
    var_seconds += vt.elapsed_s();
    var_trace.push_back(stats.variance());

    optimizer->step(model->params(), it,
                    static_cast<double>(it) / steps_per_epoch);
    csv.row({w.name, std::to_string(it),
             CsvWriter::format_double(eigen_trace.back()),
             CsvWriter::format_double(var_trace.back())});
  }

  // The paper: "even though their magnitudes lie on different scales, the
  // relative inter-iteration changes are similar" — so correlate the two
  // traces on a log scale, where relative change is what is compared.
  RunningStats se, sv;
  std::vector<double> log_eig, log_var;
  for (double e : eigen_trace) log_eig.push_back(std::log(e + 1e-12));
  for (double v : var_trace) log_var.push_back(std::log(v + 1e-12));
  for (double e : log_eig) se.add(e);
  for (double v : log_var) sv.add(v);
  double cov = 0.0;
  for (size_t i = 0; i < log_eig.size(); ++i)
    cov += (log_eig[i] - se.mean()) * (log_var[i] - sv.mean());
  cov /= log_eig.size();
  const double corr = cov / (se.stddev() * sv.stddev() + 1e-30);

  std::printf("%s: corr(log |Hessian eig|, log grad variance) = %.3f\n",
              w.name.c_str(), corr);
  std::printf("  cost per iteration: Hessian probe %.2f ms vs first-order "
              "variance %.2f ms (%.0fx cheaper)\n",
              1e3 * eigen_seconds / steps, 1e3 * var_seconds / steps,
              eigen_seconds / std::max(var_seconds, 1e-12));
  // Z-score the log traces so both trajectories share the plot scale (the
  // paper normalizes the figure the same way: different magnitudes, same
  // course).
  auto zscore = [](const std::vector<double>& log_trace) {
    RunningStats s;
    for (double v : log_trace) s.add(v);
    std::vector<double> out;
    for (double v : log_trace)
      out.push_back((v - s.mean()) / (s.stddev() + 1e-12));
    return out;
  };
  std::printf("%s\n", ascii_plot({{"log|eig| (z)", zscore(log_eig)},
                                  {"log var (z)", zscore(log_var)}},
                                 64, 10)
                          .c_str());
}

}  // namespace

int main() {
  print_banner("Fig. 4 — Hessian top eigenvalue vs first-order grad variance",
               "the traces track each other; the first-order signal is far "
               "cheaper to compute");
  CsvWriter csv(results_dir() + "/fig4_hessian_vs_variance.csv",
                {"workload", "iteration", "abs_top_eigenvalue",
                 "grad_variance"});
  trace_workload(workload_resnet(), 60, csv);
  trace_workload(workload_vgg(), 60, csv);
  return 0;
}
