// google-benchmark microbenchmarks for the hot operations: tensor kernels,
// the Δ(g_i) statistic, KDE, collectives and the parameter server.
#include <benchmark/benchmark.h>

#include <cmath>
#include <span>
#include <thread>

#include "comm/collectives.hpp"
#include "comm/event_loop.hpp"
#include "comm/parameter_server.hpp"
#include "comm/slice_schedule.hpp"
#include "nn/models.hpp"
#include "stats/grad_change.hpp"
#include "stats/kde.hpp"
#include "tensor/ops.hpp"

namespace selsync {
namespace {

void BM_Matmul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = ops::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_MatmulNT(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = ops::matmul_nt(a, b);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MatmulNT)->Arg(64);

void BM_Conv2d(benchmark::State& state) {
  Rng rng(3);
  const Tensor input = Tensor::randn({8, 3, 8, 8}, rng);
  const Tensor weight = Tensor::randn({8, 3, 3, 3}, rng);
  const Tensor bias = Tensor::randn({8}, rng);
  for (auto _ : state) {
    Tensor out = ops::conv2d(input, weight, bias, 1);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Conv2d);

void BM_SoftmaxRows(benchmark::State& state) {
  Rng rng(4);
  const Tensor logits = Tensor::randn({64, 1000}, rng);
  for (auto _ : state) {
    Tensor p = ops::softmax_rows(logits);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_SoftmaxRows);

void BM_RelativeGradChange(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<float> grad(n);
  for (auto& g : grad) g = static_cast<float>(rng.normal());
  RelativeGradChange gc(0.16, 25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gc.update_from_grad(grad));
  }
  state.SetBytesProcessed(state.iterations() * n * sizeof(float));
}
BENCHMARK(BM_RelativeGradChange)->Arg(1 << 16)->Arg(1 << 20)->Arg(44500000);

void BM_GaussianKde(benchmark::State& state) {
  Rng rng(6);
  std::vector<float> samples(static_cast<size_t>(state.range(0)));
  for (auto& s : samples) s = static_cast<float>(rng.normal());
  for (auto _ : state) {
    KdeResult kde = gaussian_kde(samples, 128);
    benchmark::DoNotOptimize(kde.density.data());
  }
}
BENCHMARK(BM_GaussianKde)->Arg(256)->Arg(2048);

void BM_SharedAllreduce(benchmark::State& state) {
  const size_t workers = static_cast<size_t>(state.range(0));
  const size_t dim = 1 << 14;
  SharedCollectives coll(workers);
  for (auto _ : state) {
    std::vector<std::thread> threads;
    for (size_t r = 0; r < workers; ++r)
      threads.emplace_back([&, r] {
        std::vector<float> data(dim, static_cast<float>(r));
        coll.allreduce_sum(r, data);
        benchmark::DoNotOptimize(data.data());
      });
    for (auto& t : threads) t.join();
  }
}
BENCHMARK(BM_SharedAllreduce)->Arg(4)->Arg(8);

void BM_RingAllreduce(benchmark::State& state) {
  const size_t workers = static_cast<size_t>(state.range(0));
  const size_t dim = 1 << 14;
  RingAllreduce ring(workers);
  for (auto _ : state) {
    std::vector<std::thread> threads;
    for (size_t r = 0; r < workers; ++r)
      threads.emplace_back([&, r] {
        std::vector<float> data(dim, static_cast<float>(r));
        ring.run(r, data);
        benchmark::DoNotOptimize(data.data());
      });
    for (auto& t : threads) t.join();
  }
}
BENCHMARK(BM_RingAllreduce)->Arg(4)->Arg(8);

// Building the per-layer priority partition is on the job-setup path (and
// re-run by sweeps for every config); it must stay trivially cheap even at
// ResNet101-scale layer counts.
void BM_SliceSchedulePartition(benchmark::State& state) {
  const size_t slices = static_cast<size_t>(state.range(0));
  // A ResNet101-shaped layer list: 104 layers with growing channel counts.
  std::vector<size_t> layers(104);
  for (size_t i = 0; i < layers.size(); ++i) layers[i] = 1000 + 137 * i;
  for (auto _ : state) {
    SliceSchedule sched =
        SliceSchedule::build(layers, slices, SliceScheduleKind::kOutputFirst);
    benchmark::DoNotOptimize(sched.slices().data());
  }
  state.SetItemsProcessed(state.iterations() * layers.size());
}
BENCHMARK(BM_SliceSchedulePartition)->Arg(4)->Arg(16)->Arg(64);

// The sliced data plane trades one big collective for `slices` smaller
// ones; this prices the real ring transport's per-round overhead so the
// schedule slicing stays honest about its constant costs.
void BM_SlicedRingAllreduce(benchmark::State& state) {
  const size_t slices = static_cast<size_t>(state.range(0));
  const size_t workers = 4;
  const size_t dim = 1 << 14;
  RingAllreduce ring(workers);
  const auto sched = SliceSchedule::build(
      std::vector<size_t>(64, dim / 64), slices,
      SliceScheduleKind::kOutputFirst);
  for (auto _ : state) {
    std::vector<std::thread> threads;
    for (size_t r = 0; r < workers; ++r)
      threads.emplace_back([&, r] {
        std::vector<float> data(dim, static_cast<float>(r));
        for (const SyncSlice& s : sched.slices())
          ring.run(r, std::span<float>(data.data() + s.offset, s.length));
        benchmark::DoNotOptimize(data.data());
      });
    for (auto& t : threads) t.join();
  }
  state.SetBytesProcessed(state.iterations() * dim * sizeof(float));
}
BENCHMARK(BM_SlicedRingAllreduce)->Arg(1)->Arg(4)->Arg(16);

void BM_FlagAllgather(benchmark::State& state) {
  const size_t workers = 8;
  SharedCollectives coll(workers);
  for (auto _ : state) {
    std::vector<std::thread> threads;
    for (size_t r = 0; r < workers; ++r)
      threads.emplace_back([&, r] {
        auto flags = coll.allgather_byte(r, r % 2);
        benchmark::DoNotOptimize(flags.data());
      });
    for (auto& t : threads) t.join();
  }
}
BENCHMARK(BM_FlagAllgather);

void BM_PsRoundAverage(benchmark::State& state) {
  const size_t workers = 4;
  const size_t dim = 1 << 14;
  ParameterServer ps(std::vector<float>(dim, 0.f), workers);
  PsRoundConfig cfg;
  cfg.participants = workers;
  cfg.order = PsRoundOrder::kArrival;
  cfg.average = true;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    for (size_t r = 0; r < workers; ++r)
      threads.emplace_back([&, r] {
        std::vector<float> mine(dim, static_cast<float>(r));
        const uint64_t ticket = ps.round().begin(cfg);
        ps.round().contribute(ticket, r, mine);
        auto avg = ps.round().await(ticket);
        benchmark::DoNotOptimize(avg.data());
      });
    for (auto& t : threads) t.join();
  }
}
BENCHMARK(BM_PsRoundAverage);

// The DES ready heap is the engine's innermost loop: every park, wake and
// yield pays one push+pop. Its per-event cost is what bounds how far past
// N=1024 fig1a_scaling --engine des can sweep.
void BM_DesEventQueuePushPop(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(8);
  std::vector<DesEvent> events(n);
  for (size_t i = 0; i < n; ++i) {
    events[i].vtime = std::abs(rng.normal());
    events[i].rank = i % 16;
    events[i].seq = i;
    events[i].task = i;
  }
  for (auto _ : state) {
    DesReadyQueue queue;
    for (const DesEvent& event : events) queue.push(event);
    while (!queue.empty()) {
      DesEvent event = queue.pop();
      benchmark::DoNotOptimize(event);
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DesEventQueuePushPop)->Arg(128)->Arg(1024)->Arg(16384);

#if !defined(__SANITIZE_THREAD__)
// One worker state-machine step under DES = one yield_current(): publish the
// fiber's virtual clock, heapify, context-switch to the globally earliest
// fiber. This prices that full round trip across a fiber population; the
// EventLoop constructor refuses to run under TSan, hence the guard.
void BM_DesFiberStep(benchmark::State& state) {
  const size_t fibers = static_cast<size_t>(state.range(0));
  constexpr size_t kSteps = 64;
  for (auto _ : state) {
    EventLoop loop(fibers);
    for (size_t r = 0; r < fibers; ++r)
      loop.spawn(r, [&loop] {
        for (size_t s = 1; s <= kSteps; ++s)
          loop.yield_current(static_cast<double>(s));
      });
    loop.run();
    benchmark::DoNotOptimize(loop.switches());
  }
  state.SetItemsProcessed(state.iterations() * fibers * kSteps);
}
BENCHMARK(BM_DesFiberStep)->Arg(8)->Arg(64)->Arg(256);
#endif  // !__SANITIZE_THREAD__

void BM_TrainStepResNetMLP(benchmark::State& state) {
  ClassifierConfig cfg;
  cfg.input_dim = 48;
  cfg.classes = 10;
  cfg.hidden = 48;
  cfg.resnet_blocks = 3;
  auto model = make_resnet_mlp(cfg, 1);
  Rng rng(7);
  Batch batch;
  batch.x = Tensor::randn({16, 48}, rng);
  batch.targets.resize(16);
  for (int i = 0; i < 16; ++i) batch.targets[i] = i % 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->train_step(batch));
  }
}
BENCHMARK(BM_TrainStepResNetMLP);

}  // namespace
}  // namespace selsync

BENCHMARK_MAIN();
