// Fig. 8b: one-time cost of building SelDP vs DefDP partitions for the
// paper's dataset sizes.
//
// Paper result: identical for CIFAR-scale data; SelDP costs a few extra
// seconds on ImageNet-1K / WikiText-103-scale data — a one-time
// preprocessing overhead, negligible against training.
#include "bench_common.hpp"

#include "data/partition.hpp"
#include "util/timer.hpp"

using namespace selsync;
using namespace selsync::bench;

int main() {
  print_banner("Fig. 8b — SelDP vs DefDP partitioning overhead",
               "near-identical on small datasets; a modest one-time extra "
               "cost on large ones");

  CsvWriter csv(results_dir() + "/fig8b_partition_overhead.csv",
                {"dataset", "samples", "scheme", "ms"});

  struct DatasetSize {
    const char* name;
    size_t samples;
  };
  // The paper's datasets by index count (WikiText counted in bptt windows).
  const std::vector<DatasetSize> datasets{
      {"CIFAR10", 50'000},
      {"CIFAR100", 50'000},
      {"ImageNet-1K", 1'281'167},
      {"WikiText-103", 103'000'000 / 35}};
  constexpr size_t kWorkers = 16;

  std::printf("%-14s %12s %12s %12s\n", "dataset", "samples", "DefDP[ms]",
              "SelDP[ms]");
  for (const DatasetSize& d : datasets) {
    WallTimer t1;
    const Partition def = partition_default(d.samples, kWorkers, 1);
    const double def_ms = t1.elapsed_ms();
    WallTimer t2;
    const Partition sel = partition_selsync(d.samples, kWorkers, 1);
    const double sel_ms = t2.elapsed_ms();
    std::printf("%-14s %12zu %12.1f %12.1f\n", d.name, d.samples, def_ms,
                sel_ms);
    csv.row({d.name, std::to_string(d.samples), "DefDP",
             CsvWriter::format_double(def_ms)});
    csv.row({d.name, std::to_string(d.samples), "SelDP",
             CsvWriter::format_double(sel_ms)});
    // Keep the partitions alive until after timing so allocation isn't
    // reclaimed mid-measurement.
    if (def.worker_order.empty() || sel.worker_order.empty()) return 1;
  }

  std::printf(
      "\nSelDP materializes an N x larger index stream (every worker sees "
      "all chunks), so its cost grows on ImageNet/WikiText-scale data — the "
      "paper's 'margin of only a few seconds', incurred once before "
      "training.\n");
  return 0;
}
