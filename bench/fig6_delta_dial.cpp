// Fig. 6: the δ dial. δ=0 degenerates to BSP (LSSR 0); a δ above the
// maximum observed gradient change trains with local SGD only (LSSR 1);
// intermediate values trade communication for statistical efficiency.
//
// Also runs the DESIGN.md §5.1 ablation: the paper's any-worker-triggers
// rule against a hypothetical "only own vote" variant, approximated by
// comparing cluster LSSR with the per-worker vote rate.
#include "bench_common.hpp"

using namespace selsync;
using namespace selsync::bench;

int main() {
  print_banner("Fig. 6 — sliding δ between BSP and pure local SGD",
               "LSSR grows monotonically with δ, from 0 (BSP) to 1 (local)");

  CsvWriter csv(results_dir() + "/fig6_delta_dial.csv",
                {"delta", "lssr", "sync_steps", "metric", "sim_time_s"});

  const Workload w = workload_resnet();
  const std::vector<double> deltas{0.0,  0.02, 0.05, 0.08, 0.1,
                                   0.15, 0.2,  0.3,  1e9};

  std::printf("%10s %8s %10s %10s %12s\n", "delta", "LSSR", "syncs",
              metric_name(w), "sim time[s]");
  std::vector<double> lssr_curve;
  for (double delta : deltas) {
    TrainJob job = make_job(w, StrategyKind::kSelSync, 16, 400);
    job.selsync.delta = delta;
    const TrainResult r = run_training(job);
    std::printf("%10.3g %8.3f %10llu %10.3f %12.1f\n", delta, r.lssr(),
                static_cast<unsigned long long>(r.sync_steps),
                primary_metric(w, r.final_eval), r.sim_time_s);
    csv.row({CsvWriter::format_double(delta),
             CsvWriter::format_double(r.lssr()), std::to_string(r.sync_steps),
             CsvWriter::format_double(primary_metric(w, r.final_eval)),
             CsvWriter::format_double(r.sim_time_s)});
    lssr_curve.push_back(r.lssr());
  }
  std::printf("\nLSSR vs delta: %s\n", sparkline(lssr_curve, 40).c_str());
  std::printf(
      "delta=0 must give LSSR=0 (BSP); a huge delta gives LSSR=1 (local "
      "SGD), matching the paper's dial.\n");
  return 0;
}
