// Ablation (extension): per-layer Δ(g_i).
//
// The paper thresholds one global Δ(g_i); layers saturate at different
// times, so a layer-selective rule (ship only the still-moving tensors,
// GradientFlow-style) could cut the synchronized volume further. This bench
// tracks, over one training run, the fraction of parameter tensors whose
// per-layer Δ exceeds δ whenever the global rule would have synchronized.
#include "bench_common.hpp"

#include "stats/layerwise_grad_change.hpp"

using namespace selsync;
using namespace selsync::bench;

int main() {
  print_banner("Ablation — per-layer Δ(g_i) (layer-selective potential)",
               "(extension; the paper uses one global threshold)");

  CsvWriter csv(results_dir() + "/ablation_layerwise.csv",
                {"iteration", "global_delta", "fraction_layers_above"});

  const Workload w = workload_resnet();
  auto model = w.model_factory(1);
  auto optimizer = w.optimizer_factory();
  std::vector<size_t> order(w.train->size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  ShardLoader loader(w.train, order, w.batch_size);
  LayerwiseGradChange layerwise(*model, 0.16, 25);

  const double delta = 0.15;
  const uint64_t steps = 600;
  const uint64_t steps_per_epoch = w.train->size() / w.batch_size;

  uint64_t global_syncs = 0;
  double layer_volume = 0.0;  // layer-fraction actually above δ at those steps
  std::vector<double> fraction_trace;
  for (uint64_t it = 0; it < steps; ++it) {
    model->train_step(loader.next_batch());
    layerwise.update();
    const double frac = layerwise.fraction_above(delta);
    fraction_trace.push_back(frac);
    if (layerwise.global_delta() >= delta) {
      ++global_syncs;
      layer_volume += frac;
    }
    optimizer->step(model->params(), it,
                    static_cast<double>(it) / steps_per_epoch);
    csv.row({std::to_string(it),
             CsvWriter::format_double(layerwise.global_delta()),
             CsvWriter::format_double(frac)});
  }

  std::printf("single-worker run, %llu steps, delta = %.2f\n",
              static_cast<unsigned long long>(steps), delta);
  std::printf("global rule would synchronize %llu steps\n",
              static_cast<unsigned long long>(global_syncs));
  if (global_syncs > 0)
    std::printf(
        "at those steps, only %.0f%% of parameter tensors exceeded delta on "
        "their own -> a layer-selective rule could skip the remaining "
        "volume\n",
        100.0 * layer_volume / global_syncs);
  std::printf("\nfraction of layers above delta over training:\n%s\n",
              sparkline(fraction_trace, 64).c_str());
  return 0;
}
