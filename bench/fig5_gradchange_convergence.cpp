// Fig. 5: the relative gradient change Δ(g_i) (EWMA window 25) plotted
// against the convergence curve for the four workloads under BSP.
//
// Paper result: Δ(g_i) is large while accuracy/perplexity moves sharply,
// flattens when convergence plateaus, and spikes at learning-rate decays
// (the ResNet101 spike after step 10K).
#include "bench_common.hpp"

#include <cmath>

using namespace selsync;
using namespace selsync::bench;

int main() {
  print_banner("Fig. 5 — Δ(g_i) vs convergence under BSP",
               "Δ(g_i) tracks accuracy/perplexity movement and spikes at LR "
               "decay");

  CsvWriter csv(results_dir() + "/fig5_gradchange.csv",
                {"workload", "iteration", "delta_g"});
  CsvWriter curve_csv(results_dir() + "/fig5_convergence.csv",
                      {"workload", "iteration", "metric"});

  for (const Workload& w : all_workloads()) {
    TrainJob job = make_job(w, StrategyKind::kBsp, 8, 700);
    job.eval_interval = 25;
    job.record_delta_trace = true;
    const TrainResult r = run_training(job);

    for (size_t i = 0; i < r.delta_trace.size(); ++i)
      csv.row({w.name, std::to_string(i),
               CsvWriter::format_double(r.delta_trace[i])});
    std::vector<double> metric;
    for (const EvalPoint& pt : r.eval_history) {
      metric.push_back(primary_metric(w, pt));
      curve_csv.row({w.name, std::to_string(pt.iteration),
                     CsvWriter::format_double(metric.back())});
    }

    // Downsample Δ(g_i) to the eval cadence, keeping each window's MAX so
    // the spikes the figure highlights (early phase, LR decay) survive.
    std::vector<double> delta_ds;
    for (size_t start = 0; start < r.delta_trace.size();
         start += job.eval_interval) {
      double mx = 0.0;
      for (size_t i = start;
           i < std::min(start + job.eval_interval, r.delta_trace.size()); ++i)
        mx = std::max(mx, r.delta_trace[i]);
      delta_ds.push_back(mx);
    }

    std::printf("\n%s (%s; LR decays per the paper's schedule)\n",
                w.name.c_str(), metric_name(w));
    std::printf("%s", ascii_plot({{"delta", delta_ds}, {"metric", metric}}, 64,
                                 10)
                          .c_str());

    // Quantify the figure's two claims:
    //  (a) Δ(g_i) is elevated in the volatile early phase vs the plateau;
    //  (b) Δ(g_i) spikes at the learning-rate decay steps.
    const size_t n_steps = r.delta_trace.size();
    auto mean_over = [&](size_t lo, size_t hi) {
      double acc = 0;
      size_t cnt = 0;
      for (size_t i = lo; i < std::min(hi, n_steps); ++i, ++cnt)
        acc += r.delta_trace[i];
      return cnt ? acc / cnt : 0.0;
    };
    // Early volatility: the first ~20 steps, while the randomly initialized
    // model adjusts aggressively (paper §II-E), vs the settled stretch that
    // follows.
    const double early_mean = mean_over(1, 20);
    const double settled_mean = mean_over(20, 70);
    std::printf("first-20-steps mean Δ = %.4f vs settled mean Δ = %.4f (%s)\n",
                early_mean, settled_mean,
                early_mean >= settled_mean ? "elevated early, as published"
                                           : "not elevated");
    // LR-decay spike (only the SGD step-decay recipes decay by epoch:
    // ResNet101 and VGG11).
    const uint64_t spe = job.steps_per_epoch();
    const size_t first_decay = static_cast<size_t>(12 * spe);
    if (!w.is_lm && !w.top5_metric && first_decay + 26 < n_steps) {
      const double baseline = mean_over(first_decay - 60, first_decay);
      double spike = 0;
      for (size_t i = first_decay; i < first_decay + 26; ++i)
        spike = std::max(spike, r.delta_trace[i]);
      std::printf("max Δ within 25 steps of the first LR decay = %.4f "
                  "(%.1fx the pre-decay mean — the paper's decay spike)\n",
                  spike, spike / std::max(baseline, 1e-12));
    }
  }
  return 0;
}
