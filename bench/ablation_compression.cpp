// Ablation (DESIGN.md §5, paper §II-D): how does SelSync's skip-the-sync
// approach compare to shrinking every sync with gradient compression?
//
// Paper position: "compression is not a zero-cost operation ... a high
// compression factor may improve throughput but degrade final model
// quality"; SelSync instead eliminates whole rounds. This bench runs BSP
// with Top-k (1%), signSGD and 8-bit quantization against plain BSP and
// SelSync on the ResNet workload.
#include "bench_common.hpp"

using namespace selsync;
using namespace selsync::bench;

int main() {
  print_banner("Ablation — gradient compression vs selective synchronization",
               "compression shrinks every round; SelSync skips rounds; both "
               "cut time, compression risks accuracy at high factors");

  CsvWriter csv(results_dir() + "/ablation_compression.csv",
                {"method", "top1", "comm_gb", "sim_time_s", "lssr"});

  const Workload w = workload_resnet();

  struct Entry {
    std::string label;
    StrategyKind strategy;
    CompressionConfig compression;
    double delta = 0.0;
  };
  const std::vector<Entry> entries{
      {"BSP (dense fp32)", StrategyKind::kBsp, {}, 0},
      {"BSP + Top-k 1%", StrategyKind::kBsp,
       {CompressionKind::kTopK, 0.01, true}, 0},
      {"BSP + Top-k 0.1%", StrategyKind::kBsp,
       {CompressionKind::kTopK, 0.001, true}, 0},
      {"BSP + signSGD", StrategyKind::kBsp,
       {CompressionKind::kSignSgd, 0.01, true}, 0},
      {"BSP + 8-bit quant", StrategyKind::kBsp,
       {CompressionKind::kQuant8, 0.01, true}, 0},
      {"BSP + adaptive Top-k", StrategyKind::kBsp,
       {CompressionKind::kTopK, 0.002, true, true, 0.02, 0.25}, 0},
      {"SelSync d=0.15", StrategyKind::kSelSync, {}, 0.15},
      {"SelSync d=0.15 + Top-k 1% (GA)", StrategyKind::kSelSync,
       {CompressionKind::kTopK, 0.01, true}, 0.15}};

  std::printf("%-32s %8s %10s %12s %7s\n", "method", "top1", "comm [GB]",
              "sim time[s]", "LSSR");
  for (const Entry& e : entries) {
    TrainJob job = make_job(w, e.strategy, 16, 400);
    job.compression = e.compression;
    job.selsync.delta = e.delta;
    if (e.strategy == StrategyKind::kSelSync &&
        e.compression.kind != CompressionKind::kNone)
      job.selsync.aggregation = AggregationMode::kGradients;
    const TrainResult r = run_training(job);
    std::printf("%-32s %8.3f %10.2f %12.1f %7.3f\n", e.label.c_str(),
                r.best_top1, r.comm_bytes / (1024.0 * 1024.0 * 1024.0),
                r.sim_time_s, r.lssr());
    csv.row({e.label, CsvWriter::format_double(r.best_top1),
             CsvWriter::format_double(r.comm_bytes / (1024.0 * 1024.0 *
                                                      1024.0)),
             CsvWriter::format_double(r.sim_time_s),
             CsvWriter::format_double(r.lssr())});
  }

  std::printf(
      "\nReading: compression cuts bytes per round but pays a codec cost "
      "every iteration and can lose accuracy at extreme ratios (Top-k "
      "0.1%%); SelSync attacks the round count instead, and composes with "
      "compression when synchronizing gradients.\n");
  return 0;
}
