// Ablation (paper §II-A motivation): systems heterogeneity. BSP's barrier
// makes every step wait for the slowest worker; SSP decouples workers up to
// the staleness bound; SelSync only pays the straggler on the steps it
// chooses to synchronize.
#include "bench_common.hpp"

using namespace selsync;
using namespace selsync::bench;

int main() {
  print_banner("Ablation — straggler sensitivity (one slow worker)",
               "BSP degrades with the straggler factor; SSP and "
               "high-LSSR SelSync degrade far less");

  CsvWriter csv(results_dir() + "/ablation_stragglers.csv",
                {"method", "straggler_factor", "sim_time_s", "top1"});

  const Workload w = workload_resnet();
  constexpr size_t kWorkers = 8;

  struct Method {
    const char* name;
    StrategyKind strategy;
    double delta;
    uint64_t staleness;
  };
  const std::vector<Method> methods{
      {"BSP", StrategyKind::kBsp, 0, 0},
      {"SSP s=100", StrategyKind::kSsp, 0, 100},
      {"SelSync d=0.5", StrategyKind::kSelSync, 0.25, 0}};

  std::printf("%-16s", "straggler:");
  const std::vector<double> factors{1.0, 2.0, 4.0};
  for (double f : factors) std::printf("%12.0fx", f);
  std::printf("   (simulated time [s], 300 iterations)\n");

  for (const Method& m : methods) {
    std::printf("%-16s", m.name);
    double baseline = 0.0;
    for (double factor : factors) {
      TrainJob job = make_job(w, m.strategy, kWorkers, 300);
      job.selsync.delta = m.delta;
      job.ssp.staleness = m.staleness;
      job.worker_speed.assign(kWorkers, 1.0);
      job.worker_speed.back() = factor;  // one straggler
      const TrainResult r = run_training(job);
      if (factor == 1.0) baseline = r.sim_time_s;
      std::printf("%11.1fs", r.sim_time_s);
      csv.row({m.name, CsvWriter::format_double(factor),
               CsvWriter::format_double(r.sim_time_s),
               CsvWriter::format_double(r.best_top1)});
      (void)baseline;
    }
    std::printf("\n");
  }

  std::printf(
      "\nReading: at 4x, BSP's time inflates by the straggler's full "
      "compute slowdown on every step; SelSync only on synchronized steps; "
      "SSP never blocks a fast worker on the barrier at all.\n");
  return 0;
}
