// Shared harness pieces for the figure/table reproduction benches: the
// standard workloads (re-exported from core/workloads) plus output helpers.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/trainer.hpp"
#include "core/workloads.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"

namespace selsync::bench {

using selsync::Workload;
using selsync::all_workloads;
using selsync::make_job;
using selsync::metric_improves;
using selsync::metric_name;
using selsync::primary_metric;
using selsync::workload_alexnet;
using selsync::workload_by_name;
using selsync::workload_resnet;
using selsync::workload_transformer;
using selsync::workload_vgg;

/// Maps the paper's δ settings onto each workload's own Δ(g_i) scale
/// (model families differ; the mapping targets the published LSSR band,
/// see EXPERIMENTS.md). `paper_delta` is 0.25, 0.3 or 0.5.
double mapped_delta(const std::string& workload, double paper_delta);

/// Directory all benches write CSV series into (created on demand).
std::string results_dir();

/// Banner helper: names the paper artifact a bench reproduces.
void print_banner(const std::string& figure, const std::string& claim);

}  // namespace selsync::bench
