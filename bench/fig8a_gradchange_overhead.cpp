// Fig. 8a: wall-clock overhead of computing Δ(g_i) (squared gradient norm,
// EWMA smoothing, windowed variance) per iteration, for the gradient sizes
// of the four paper models and EWMA windows {25, 50, 100, 200}.
//
// Paper result: ~17 ms at window 25 for ResNet101, growing ~50% by window
// 200; a few ms for the smaller models; always negligible vs a
// communication round.
//
// This bench measures REAL wall time on this machine: the dominant cost is
// the O(|g|) norm over the paper-scale gradient vector, exactly as in the
// paper's implementation.
#include "bench_common.hpp"

#include "comm/comm_backend.hpp"
#include "comm/cost_model.hpp"
#include "stats/grad_change.hpp"
#include "util/timer.hpp"

using namespace selsync;
using namespace selsync::bench;

int main() {
  print_banner("Fig. 8a — Δ(g_i) computation overhead vs EWMA window",
               "milliseconds per iteration, growing with window size, tiny "
               "vs communication");

  CsvWriter csv(results_dir() + "/fig8a_overhead.csv",
                {"model", "window", "ms_per_iteration"});

  const std::vector<size_t> windows{25, 50, 100, 200};
  Rng rng(5);

  std::printf("%-12s", "window:");
  for (size_t w : windows) std::printf("%10zu", w);
  std::printf("\n");

  for (const PaperModelProfile& model : all_paper_models()) {
    // A gradient vector of the paper model's true size.
    std::vector<float> grad(static_cast<size_t>(model.param_count));
    for (auto& g : grad) g = static_cast<float>(rng.normal(0.0, 1e-3));

    std::printf("%-12s", model.name.c_str());
    for (size_t window : windows) {
      RelativeGradChange gc(0.16, window);
      // Warm the window so windowed_variance touches `window` entries.
      for (size_t i = 0; i < window; ++i) gc.update(1.0 + 1e-3 * i);

      constexpr int kIters = 12;
      volatile double sink = 0.0;
      // Warm the cache so the first timed pass is not a cold-memory outlier.
      sink = sink + gc.update_from_grad(grad) + gc.windowed_variance();
      WallTimer timer;
      for (int i = 0; i < kIters; ++i) {
        // One iteration of the paper's RelativeGradChange: squared norm of
        // the full gradient, EWMA update, and the windowed variance
        // statistic over the retained history.
        sink = sink + gc.update_from_grad(grad) + gc.windowed_variance();
      }
      const double ms = timer.elapsed_ms() / kIters;
      std::printf("%10.2f", ms);
      csv.row({model.name, std::to_string(window),
               CsvWriter::format_double(ms)});
    }
    std::printf("\n");
  }

  // Put the overhead in context: one synchronization round on each
  // communication backend at the paper's 16 workers, priced by the same
  // sync_cost() account the trainer charges. Δ(g_i) must stay negligible
  // against *every* backend, not just the slow PS incast.
  {
    const CostModel cost(paper_network_5gbps());
    constexpr size_t kWorkers = 16;
    struct SweepBackend {
      const char* label;
      std::unique_ptr<CommBackend> backend;
    };
    std::vector<SweepBackend> backends;
    CommBackendConfig config;
    config.workers = kWorkers;
    config.kind = BackendKind::kParameterServer;
    config.initial_params.assign(1, 0.0f);
    backends.push_back({"ps", make_comm_backend(config)});
    config.initial_params.clear();
    config.kind = BackendKind::kRing;
    config.topology = Topology::kRingAllreduce;
    backends.push_back({"ring", make_comm_backend(config)});
    config.kind = BackendKind::kTree;
    backends.push_back({"tree", make_comm_backend(config)});

    CsvWriter sync_csv(results_dir() + "/fig8a_backend_sync_cost.csv",
                       {"model", "backend", "sync_ms"});
    std::printf("\none sync round at %zu workers (simulated ms):\n", kWorkers);
    std::printf("%-12s", "backend:");
    for (const SweepBackend& b : backends) std::printf("%10s", b.label);
    std::printf("\n");
    for (const PaperModelProfile& model : all_paper_models()) {
      std::printf("%-12s", model.name.c_str());
      for (const SweepBackend& b : backends) {
        const double ms =
            1e3 *
            b.backend
                ->sync_cost(cost, static_cast<size_t>(model.param_bytes()),
                            kWorkers)
                .transfer_s;
        std::printf("%10.1f", ms);
        sync_csv.row({model.name, b.label, CsvWriter::format_double(ms)});
      }
      std::printf("\n");
    }

    // Backend x codec sweep: the same round priced with each gradient codec
    // fused into the data plane. The wire ratio comes from running the real
    // codec kernel on a synthetic gradient (1M elements is plenty for the
    // ratio to converge; Top-k keeps 1%, the paper's DGC operating point),
    // then the SyncCost breakdown shows how the reduced wire bytes and the
    // added encode/decode compute trade off per backend.
    CsvWriter codec_csv(
        results_dir() + "/fig8a_backend_codec_sweep.csv",
        {"model", "backend", "codec", "dense_mb", "wire_mb", "reduction",
         "transfer_ms", "codec_ms", "round_ms"});
    const std::vector<CompressionKind> codecs{
        CompressionKind::kNone, CompressionKind::kTopK,
        CompressionKind::kSignSgd, CompressionKind::kQuant8};
    constexpr size_t kProbeElems = 1u << 20;
    std::printf("\nbackend x codec, one round at %zu workers "
                "(wire reduction, round ms):\n",
                kWorkers);
    for (const PaperModelProfile& model : all_paper_models()) {
      for (const CompressionKind kind : codecs) {
        CompressionConfig cc;
        cc.kind = kind;
        cc.topk_fraction = 0.01;
        double ratio = 1.0;
        if (kind != CompressionKind::kNone) {
          GradientCompressor probe(cc);
          std::vector<float> g(kProbeElems);
          for (size_t i = 0; i < g.size(); ++i)
            g[i] = static_cast<float>(rng.normal(0.0, 1e-3));
          probe.compress(g, 0.0);
          ratio = probe.last_wire_ratio();
        }
        for (const SweepBackend& b : backends) {
          const SyncCost sc = b.backend->sync_cost(
              cost, static_cast<size_t>(model.param_bytes()), kWorkers,
              ratio);
          const double mb = 1024.0 * 1024.0;
          codec_csv.row({model.name, b.label, compression_kind_name(kind),
                         CsvWriter::format_double(
                             static_cast<double>(sc.dense_bytes) / mb),
                         CsvWriter::format_double(
                             static_cast<double>(sc.wire_bytes) / mb),
                         CsvWriter::format_double(
                             sc.wire_bytes == 0
                                 ? 1.0
                                 : static_cast<double>(sc.dense_bytes) /
                                       static_cast<double>(sc.wire_bytes)),
                         CsvWriter::format_double(1e3 * sc.transfer_s),
                         CsvWriter::format_double(
                             1e3 * (sc.encode_s + sc.decode_s)),
                         CsvWriter::format_double(1e3 * sc.round_time())});
        }
        if (kind == CompressionKind::kTopK)
          std::printf("  %-12s topk 1%%: %.0fx fewer wire bytes\n",
                      model.name.c_str(), 1.0 / ratio);
      }
    }
    std::printf("(full backend x codec table in %s)\n",
                (results_dir() + "/fig8a_backend_codec_sweep.csv").c_str());
  }

  std::printf(
      "\nShape check: cost scales with the model's gradient size (VGG11's "
      "133M-element gradient is the most expensive, as in the paper) and "
      "stays in the low tens of milliseconds — negligible against any "
      "synchronization round. Note: the paper reports the cost also growing "
      "~50-180%% with the EWMA window; this implementation keeps the "
      "windowed statistic O(window) on scalars, so that growth is below "
      "measurement noise here (an implementation improvement, recorded in "
      "EXPERIMENTS.md).\n");
  return 0;
}
