// Fig. 12: non-IID training — SelSync with randomized data injection at
// (α, β, δ) ∈ {(0.5,0.5,0.05), (0.5,0.5,0.3), (0.75,0.75,0.3)} vs FedAvg.
//
// Paper result: FedAvg oscillates/saturates at low accuracy on label-skewed
// shards; injection lifts SelSync well above it, and larger (α, β) lifts it
// further: (0.75,0.75,0.3) > (0.5,0.5,0.3) > (0.5,0.5,0.05).
#include "bench_common.hpp"

using namespace selsync;
using namespace selsync::bench;

namespace {

SyntheticClassData noniid_data() {
  SyntheticClassConfig cfg;
  cfg.train_samples = 3000;
  cfg.test_samples = 600;
  cfg.classes = 10;
  cfg.feature_dim = 32;
  cfg.class_separation = 1.8;
  cfg.noise_stddev = 1.2;
  cfg.seed = 41;
  return make_synthetic_classification(cfg);
}

TrainJob base_job(const SyntheticClassData& data) {
  TrainJob job;
  job.workers = 10;  // the paper's non-IID cluster: 1 label per worker
  job.batch_size = 16;
  job.max_iterations = 700;
  job.eval_interval = 50;
  job.train_data = data.train;
  job.test_data = data.test;
  job.partition = PartitionScheme::kNonIidLabel;
  job.labels_per_worker = 1;
  job.model_factory = [](uint64_t seed) {
    ClassifierConfig cfg;
    cfg.input_dim = 32;
    cfg.classes = 10;
    cfg.hidden = 32;
    cfg.resnet_blocks = 2;
    return make_resnet_mlp(cfg, seed);
  };
  job.optimizer_factory = [] {
    return std::make_unique<Sgd>(std::make_shared<ConstantLr>(0.05),
                                 SgdOptions{.momentum = 0.9});
  };
  return job;
}

}  // namespace

int main() {
  print_banner("Fig. 12 — data injection in SelSync vs FedAvg (non-IID)",
               "larger (α, β) raises accuracy; all injection configs beat "
               "FedAvg");

  CsvWriter csv(results_dir() + "/fig12_injection.csv",
                {"config", "epoch", "top1"});
  const SyntheticClassData data = noniid_data();

  struct Config {
    std::string label;
    bool fedavg;
    double alpha, beta, delta;
  };
  // δ mapping: the paper's {0.05, 0.3} scale to {0.025, 0.15} on our Δ
  // distribution (see EXPERIMENTS.md).
  const std::vector<Config> configs{
      {"FedAvg(C=1, 1/epoch)", true, 0, 0, 0},
      {"SelSync(0.5,0.5,0.05)", false, 0.5, 0.5, 0.025},
      {"SelSync(0.5,0.5,0.3)", false, 0.5, 0.5, 0.15},
      {"SelSync(0.75,0.75,0.3)", false, 0.75, 0.75, 0.15}};

  std::printf("%-26s %10s %8s\n", "config", "best-top1", "LSSR");
  for (const Config& c : configs) {
    TrainJob job = base_job(data);
    if (c.fedavg) {
      job.strategy = StrategyKind::kFedAvg;
      job.fedavg = {1.0, 1.0};  // once per epoch at this dataset scale
    } else {
      job.strategy = StrategyKind::kSelSync;
      job.selsync.delta = c.delta;
      job.injection = {true, c.alpha, c.beta};
    }
    const TrainResult r = run_training(job);
    std::printf("%-26s %10.3f %8.3f\n", c.label.c_str(), r.best_top1,
                r.lssr());
    for (const EvalPoint& pt : r.eval_history)
      csv.row({c.label, CsvWriter::format_double(pt.epoch),
               CsvWriter::format_double(pt.top1)});
  }

  std::printf(
      "\nExpected ordering (paper): SelSync(0.75,0.75,0.3) >= "
      "SelSync(0.5,0.5,0.3) >= SelSync(0.5,0.5,0.05) > FedAvg.\n");
  return 0;
}
