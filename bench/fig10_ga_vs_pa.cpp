// Fig. 10: SelSync (δ=0.25, SelDP) with gradient aggregation (GA) vs
// parameter aggregation (PA).
//
// Paper result: PA converges to the same or better accuracy (ResNet101
// +1.72%, VGG11 +0.56%, Transformer reaches the target in far fewer
// iterations; AlexNet ties) — semi-synchronous GA lets replicas drift.
#include "bench_common.hpp"

using namespace selsync;
using namespace selsync::bench;

int main() {
  print_banner("Fig. 10 — SelSync: gradient vs parameter aggregation",
               "PA achieves same-or-better convergence than GA");

  CsvWriter csv(results_dir() + "/fig10_ga_vs_pa.csv",
                {"workload", "aggregation", "epoch", "metric"});

  for (const Workload& w : all_workloads()) {
    std::printf("%s:\n", w.name.c_str());
    double metric_by_mode[2] = {0, 0};
    int idx = 0;
    for (const AggregationMode mode :
         {AggregationMode::kGradients, AggregationMode::kParameters}) {
      TrainJob job = make_job(w, StrategyKind::kSelSync, 16, 600);
      job.selsync.delta = mapped_delta(w.name, 0.25);
      job.selsync.aggregation = mode;
      const TrainResult r = run_training(job);
      const double best = w.is_lm ? r.best_perplexity
                                  : (w.top5_metric ? r.best_top5 : r.best_top1);
      metric_by_mode[idx++] = best;
      std::printf("  %-3s  best %s = %-8.3f (LSSR %.2f, syncs %llu)\n",
                  aggregation_mode_name(mode), metric_name(w), best, r.lssr(),
                  static_cast<unsigned long long>(r.sync_steps));
      for (const EvalPoint& pt : r.eval_history)
        csv.row({w.name, aggregation_mode_name(mode),
                 CsvWriter::format_double(pt.epoch),
                 CsvWriter::format_double(primary_metric(w, pt))});
    }
    const bool pa_wins = w.is_lm ? metric_by_mode[1] <= metric_by_mode[0] + 0.5
                                 : metric_by_mode[1] >= metric_by_mode[0] - 0.01;
    std::printf("  => PA %s GA%s\n",
                pa_wins ? "matches/beats" : "trails",
                pa_wins ? " (as published)" : " (differs from paper)");
  }
  return 0;
}
