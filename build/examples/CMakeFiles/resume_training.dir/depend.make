# Empty dependencies file for resume_training.
# This may be replaced when dependencies are built.
