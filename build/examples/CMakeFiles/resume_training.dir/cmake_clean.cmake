file(REMOVE_RECURSE
  "CMakeFiles/resume_training.dir/resume_training.cpp.o"
  "CMakeFiles/resume_training.dir/resume_training.cpp.o.d"
  "resume_training"
  "resume_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resume_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
