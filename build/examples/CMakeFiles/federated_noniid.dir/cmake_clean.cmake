file(REMOVE_RECURSE
  "CMakeFiles/federated_noniid.dir/federated_noniid.cpp.o"
  "CMakeFiles/federated_noniid.dir/federated_noniid.cpp.o.d"
  "federated_noniid"
  "federated_noniid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_noniid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
