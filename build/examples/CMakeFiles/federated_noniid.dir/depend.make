# Empty dependencies file for federated_noniid.
# This may be replaced when dependencies are built.
