file(REMOVE_RECURSE
  "CMakeFiles/strategy_shootout.dir/strategy_shootout.cpp.o"
  "CMakeFiles/strategy_shootout.dir/strategy_shootout.cpp.o.d"
  "strategy_shootout"
  "strategy_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategy_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
