# Empty compiler generated dependencies file for selsync_core.
# This may be replaced when dependencies are built.
