file(REMOVE_RECURSE
  "libselsync_core.a"
)
