
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checkpoint.cpp" "src/core/CMakeFiles/selsync_core.dir/checkpoint.cpp.o" "gcc" "src/core/CMakeFiles/selsync_core.dir/checkpoint.cpp.o.d"
  "/root/repo/src/core/compression.cpp" "src/core/CMakeFiles/selsync_core.dir/compression.cpp.o" "gcc" "src/core/CMakeFiles/selsync_core.dir/compression.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/selsync_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/selsync_core.dir/config.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/selsync_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/selsync_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/run_record.cpp" "src/core/CMakeFiles/selsync_core.dir/run_record.cpp.o" "gcc" "src/core/CMakeFiles/selsync_core.dir/run_record.cpp.o.d"
  "/root/repo/src/core/sync_policy.cpp" "src/core/CMakeFiles/selsync_core.dir/sync_policy.cpp.o" "gcc" "src/core/CMakeFiles/selsync_core.dir/sync_policy.cpp.o.d"
  "/root/repo/src/core/time_model.cpp" "src/core/CMakeFiles/selsync_core.dir/time_model.cpp.o" "gcc" "src/core/CMakeFiles/selsync_core.dir/time_model.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/core/CMakeFiles/selsync_core.dir/trainer.cpp.o" "gcc" "src/core/CMakeFiles/selsync_core.dir/trainer.cpp.o.d"
  "/root/repo/src/core/workloads.cpp" "src/core/CMakeFiles/selsync_core.dir/workloads.cpp.o" "gcc" "src/core/CMakeFiles/selsync_core.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comm/CMakeFiles/selsync_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/selsync_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/selsync_data.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/selsync_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/selsync_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/selsync_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/selsync_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
