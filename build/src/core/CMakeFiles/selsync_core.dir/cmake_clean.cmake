file(REMOVE_RECURSE
  "CMakeFiles/selsync_core.dir/checkpoint.cpp.o"
  "CMakeFiles/selsync_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/selsync_core.dir/compression.cpp.o"
  "CMakeFiles/selsync_core.dir/compression.cpp.o.d"
  "CMakeFiles/selsync_core.dir/config.cpp.o"
  "CMakeFiles/selsync_core.dir/config.cpp.o.d"
  "CMakeFiles/selsync_core.dir/metrics.cpp.o"
  "CMakeFiles/selsync_core.dir/metrics.cpp.o.d"
  "CMakeFiles/selsync_core.dir/run_record.cpp.o"
  "CMakeFiles/selsync_core.dir/run_record.cpp.o.d"
  "CMakeFiles/selsync_core.dir/sync_policy.cpp.o"
  "CMakeFiles/selsync_core.dir/sync_policy.cpp.o.d"
  "CMakeFiles/selsync_core.dir/time_model.cpp.o"
  "CMakeFiles/selsync_core.dir/time_model.cpp.o.d"
  "CMakeFiles/selsync_core.dir/trainer.cpp.o"
  "CMakeFiles/selsync_core.dir/trainer.cpp.o.d"
  "CMakeFiles/selsync_core.dir/workloads.cpp.o"
  "CMakeFiles/selsync_core.dir/workloads.cpp.o.d"
  "libselsync_core.a"
  "libselsync_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selsync_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
