file(REMOVE_RECURSE
  "libselsync_tensor.a"
)
