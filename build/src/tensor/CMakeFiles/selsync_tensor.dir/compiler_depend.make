# Empty compiler generated dependencies file for selsync_tensor.
# This may be replaced when dependencies are built.
