file(REMOVE_RECURSE
  "CMakeFiles/selsync_tensor.dir/ops.cpp.o"
  "CMakeFiles/selsync_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/selsync_tensor.dir/tensor.cpp.o"
  "CMakeFiles/selsync_tensor.dir/tensor.cpp.o.d"
  "libselsync_tensor.a"
  "libselsync_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selsync_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
