# Empty compiler generated dependencies file for selsync_data.
# This may be replaced when dependencies are built.
