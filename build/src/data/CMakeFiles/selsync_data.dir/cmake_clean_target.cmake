file(REMOVE_RECURSE
  "libselsync_data.a"
)
