file(REMOVE_RECURSE
  "CMakeFiles/selsync_data.dir/dataset.cpp.o"
  "CMakeFiles/selsync_data.dir/dataset.cpp.o.d"
  "CMakeFiles/selsync_data.dir/injection.cpp.o"
  "CMakeFiles/selsync_data.dir/injection.cpp.o.d"
  "CMakeFiles/selsync_data.dir/partition.cpp.o"
  "CMakeFiles/selsync_data.dir/partition.cpp.o.d"
  "CMakeFiles/selsync_data.dir/synthetic.cpp.o"
  "CMakeFiles/selsync_data.dir/synthetic.cpp.o.d"
  "libselsync_data.a"
  "libselsync_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selsync_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
