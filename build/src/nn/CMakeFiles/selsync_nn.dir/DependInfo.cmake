
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/selsync_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/selsync_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/attention.cpp" "src/nn/CMakeFiles/selsync_nn.dir/attention.cpp.o" "gcc" "src/nn/CMakeFiles/selsync_nn.dir/attention.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/nn/CMakeFiles/selsync_nn.dir/batchnorm.cpp.o" "gcc" "src/nn/CMakeFiles/selsync_nn.dir/batchnorm.cpp.o.d"
  "/root/repo/src/nn/classifier.cpp" "src/nn/CMakeFiles/selsync_nn.dir/classifier.cpp.o" "gcc" "src/nn/CMakeFiles/selsync_nn.dir/classifier.cpp.o.d"
  "/root/repo/src/nn/conv.cpp" "src/nn/CMakeFiles/selsync_nn.dir/conv.cpp.o" "gcc" "src/nn/CMakeFiles/selsync_nn.dir/conv.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/nn/CMakeFiles/selsync_nn.dir/dropout.cpp.o" "gcc" "src/nn/CMakeFiles/selsync_nn.dir/dropout.cpp.o.d"
  "/root/repo/src/nn/embedding.cpp" "src/nn/CMakeFiles/selsync_nn.dir/embedding.cpp.o" "gcc" "src/nn/CMakeFiles/selsync_nn.dir/embedding.cpp.o.d"
  "/root/repo/src/nn/eval_report.cpp" "src/nn/CMakeFiles/selsync_nn.dir/eval_report.cpp.o" "gcc" "src/nn/CMakeFiles/selsync_nn.dir/eval_report.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/selsync_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/selsync_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/selsync_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/selsync_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/selsync_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/selsync_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/models.cpp" "src/nn/CMakeFiles/selsync_nn.dir/models.cpp.o" "gcc" "src/nn/CMakeFiles/selsync_nn.dir/models.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/nn/CMakeFiles/selsync_nn.dir/module.cpp.o" "gcc" "src/nn/CMakeFiles/selsync_nn.dir/module.cpp.o.d"
  "/root/repo/src/nn/norm.cpp" "src/nn/CMakeFiles/selsync_nn.dir/norm.cpp.o" "gcc" "src/nn/CMakeFiles/selsync_nn.dir/norm.cpp.o.d"
  "/root/repo/src/nn/paper_profiles.cpp" "src/nn/CMakeFiles/selsync_nn.dir/paper_profiles.cpp.o" "gcc" "src/nn/CMakeFiles/selsync_nn.dir/paper_profiles.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/nn/CMakeFiles/selsync_nn.dir/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/selsync_nn.dir/sequential.cpp.o.d"
  "/root/repo/src/nn/summary.cpp" "src/nn/CMakeFiles/selsync_nn.dir/summary.cpp.o" "gcc" "src/nn/CMakeFiles/selsync_nn.dir/summary.cpp.o.d"
  "/root/repo/src/nn/transformer_lm.cpp" "src/nn/CMakeFiles/selsync_nn.dir/transformer_lm.cpp.o" "gcc" "src/nn/CMakeFiles/selsync_nn.dir/transformer_lm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/selsync_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/selsync_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
