# Empty compiler generated dependencies file for selsync_nn.
# This may be replaced when dependencies are built.
