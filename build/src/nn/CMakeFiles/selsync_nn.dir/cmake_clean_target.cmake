file(REMOVE_RECURSE
  "libselsync_nn.a"
)
