# Empty compiler generated dependencies file for selsync_optim.
# This may be replaced when dependencies are built.
