file(REMOVE_RECURSE
  "libselsync_optim.a"
)
