file(REMOVE_RECURSE
  "CMakeFiles/selsync_optim.dir/ema_tracker.cpp.o"
  "CMakeFiles/selsync_optim.dir/ema_tracker.cpp.o.d"
  "CMakeFiles/selsync_optim.dir/optimizer.cpp.o"
  "CMakeFiles/selsync_optim.dir/optimizer.cpp.o.d"
  "libselsync_optim.a"
  "libselsync_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selsync_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
