# Empty compiler generated dependencies file for selsync_comm.
# This may be replaced when dependencies are built.
