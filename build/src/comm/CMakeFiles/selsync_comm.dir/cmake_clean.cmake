file(REMOVE_RECURSE
  "CMakeFiles/selsync_comm.dir/cluster.cpp.o"
  "CMakeFiles/selsync_comm.dir/cluster.cpp.o.d"
  "CMakeFiles/selsync_comm.dir/collectives.cpp.o"
  "CMakeFiles/selsync_comm.dir/collectives.cpp.o.d"
  "CMakeFiles/selsync_comm.dir/cost_model.cpp.o"
  "CMakeFiles/selsync_comm.dir/cost_model.cpp.o.d"
  "CMakeFiles/selsync_comm.dir/fault_injector.cpp.o"
  "CMakeFiles/selsync_comm.dir/fault_injector.cpp.o.d"
  "CMakeFiles/selsync_comm.dir/network_sim.cpp.o"
  "CMakeFiles/selsync_comm.dir/network_sim.cpp.o.d"
  "CMakeFiles/selsync_comm.dir/parameter_server.cpp.o"
  "CMakeFiles/selsync_comm.dir/parameter_server.cpp.o.d"
  "libselsync_comm.a"
  "libselsync_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selsync_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
