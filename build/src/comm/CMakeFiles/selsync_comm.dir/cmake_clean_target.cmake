file(REMOVE_RECURSE
  "libselsync_comm.a"
)
