
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/cluster.cpp" "src/comm/CMakeFiles/selsync_comm.dir/cluster.cpp.o" "gcc" "src/comm/CMakeFiles/selsync_comm.dir/cluster.cpp.o.d"
  "/root/repo/src/comm/collectives.cpp" "src/comm/CMakeFiles/selsync_comm.dir/collectives.cpp.o" "gcc" "src/comm/CMakeFiles/selsync_comm.dir/collectives.cpp.o.d"
  "/root/repo/src/comm/cost_model.cpp" "src/comm/CMakeFiles/selsync_comm.dir/cost_model.cpp.o" "gcc" "src/comm/CMakeFiles/selsync_comm.dir/cost_model.cpp.o.d"
  "/root/repo/src/comm/fault_injector.cpp" "src/comm/CMakeFiles/selsync_comm.dir/fault_injector.cpp.o" "gcc" "src/comm/CMakeFiles/selsync_comm.dir/fault_injector.cpp.o.d"
  "/root/repo/src/comm/network_sim.cpp" "src/comm/CMakeFiles/selsync_comm.dir/network_sim.cpp.o" "gcc" "src/comm/CMakeFiles/selsync_comm.dir/network_sim.cpp.o.d"
  "/root/repo/src/comm/parameter_server.cpp" "src/comm/CMakeFiles/selsync_comm.dir/parameter_server.cpp.o" "gcc" "src/comm/CMakeFiles/selsync_comm.dir/parameter_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/selsync_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
