file(REMOVE_RECURSE
  "libselsync_util.a"
)
