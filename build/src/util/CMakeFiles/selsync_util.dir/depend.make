# Empty dependencies file for selsync_util.
# This may be replaced when dependencies are built.
