file(REMOVE_RECURSE
  "CMakeFiles/selsync_util.dir/args.cpp.o"
  "CMakeFiles/selsync_util.dir/args.cpp.o.d"
  "CMakeFiles/selsync_util.dir/ascii_plot.cpp.o"
  "CMakeFiles/selsync_util.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/selsync_util.dir/csv.cpp.o"
  "CMakeFiles/selsync_util.dir/csv.cpp.o.d"
  "CMakeFiles/selsync_util.dir/json.cpp.o"
  "CMakeFiles/selsync_util.dir/json.cpp.o.d"
  "CMakeFiles/selsync_util.dir/logging.cpp.o"
  "CMakeFiles/selsync_util.dir/logging.cpp.o.d"
  "CMakeFiles/selsync_util.dir/rng.cpp.o"
  "CMakeFiles/selsync_util.dir/rng.cpp.o.d"
  "libselsync_util.a"
  "libselsync_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selsync_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
