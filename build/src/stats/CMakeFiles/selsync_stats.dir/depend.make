# Empty dependencies file for selsync_stats.
# This may be replaced when dependencies are built.
