file(REMOVE_RECURSE
  "CMakeFiles/selsync_stats.dir/ewma.cpp.o"
  "CMakeFiles/selsync_stats.dir/ewma.cpp.o.d"
  "CMakeFiles/selsync_stats.dir/grad_change.cpp.o"
  "CMakeFiles/selsync_stats.dir/grad_change.cpp.o.d"
  "CMakeFiles/selsync_stats.dir/hessian.cpp.o"
  "CMakeFiles/selsync_stats.dir/hessian.cpp.o.d"
  "CMakeFiles/selsync_stats.dir/kde.cpp.o"
  "CMakeFiles/selsync_stats.dir/kde.cpp.o.d"
  "CMakeFiles/selsync_stats.dir/layerwise_grad_change.cpp.o"
  "CMakeFiles/selsync_stats.dir/layerwise_grad_change.cpp.o.d"
  "libselsync_stats.a"
  "libselsync_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selsync_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
