file(REMOVE_RECURSE
  "libselsync_stats.a"
)
