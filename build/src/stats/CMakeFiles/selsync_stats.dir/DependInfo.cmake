
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/ewma.cpp" "src/stats/CMakeFiles/selsync_stats.dir/ewma.cpp.o" "gcc" "src/stats/CMakeFiles/selsync_stats.dir/ewma.cpp.o.d"
  "/root/repo/src/stats/grad_change.cpp" "src/stats/CMakeFiles/selsync_stats.dir/grad_change.cpp.o" "gcc" "src/stats/CMakeFiles/selsync_stats.dir/grad_change.cpp.o.d"
  "/root/repo/src/stats/hessian.cpp" "src/stats/CMakeFiles/selsync_stats.dir/hessian.cpp.o" "gcc" "src/stats/CMakeFiles/selsync_stats.dir/hessian.cpp.o.d"
  "/root/repo/src/stats/kde.cpp" "src/stats/CMakeFiles/selsync_stats.dir/kde.cpp.o" "gcc" "src/stats/CMakeFiles/selsync_stats.dir/kde.cpp.o.d"
  "/root/repo/src/stats/layerwise_grad_change.cpp" "src/stats/CMakeFiles/selsync_stats.dir/layerwise_grad_change.cpp.o" "gcc" "src/stats/CMakeFiles/selsync_stats.dir/layerwise_grad_change.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/selsync_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/selsync_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/selsync_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
