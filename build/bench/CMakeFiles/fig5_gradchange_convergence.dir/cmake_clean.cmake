file(REMOVE_RECURSE
  "CMakeFiles/fig5_gradchange_convergence.dir/fig5_gradchange_convergence.cpp.o"
  "CMakeFiles/fig5_gradchange_convergence.dir/fig5_gradchange_convergence.cpp.o.d"
  "fig5_gradchange_convergence"
  "fig5_gradchange_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_gradchange_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
