# Empty dependencies file for ablation_layerwise.
# This may be replaced when dependencies are built.
