file(REMOVE_RECURSE
  "CMakeFiles/ablation_layerwise.dir/ablation_layerwise.cpp.o"
  "CMakeFiles/ablation_layerwise.dir/ablation_layerwise.cpp.o.d"
  "ablation_layerwise"
  "ablation_layerwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_layerwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
