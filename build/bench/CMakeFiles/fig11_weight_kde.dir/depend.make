# Empty dependencies file for fig11_weight_kde.
# This may be replaced when dependencies are built.
