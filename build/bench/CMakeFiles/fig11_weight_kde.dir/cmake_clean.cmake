file(REMOVE_RECURSE
  "CMakeFiles/fig11_weight_kde.dir/fig11_weight_kde.cpp.o"
  "CMakeFiles/fig11_weight_kde.dir/fig11_weight_kde.cpp.o.d"
  "fig11_weight_kde"
  "fig11_weight_kde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_weight_kde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
