file(REMOVE_RECURSE
  "CMakeFiles/ablation_ema.dir/ablation_ema.cpp.o"
  "CMakeFiles/ablation_ema.dir/ablation_ema.cpp.o.d"
  "ablation_ema"
  "ablation_ema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
