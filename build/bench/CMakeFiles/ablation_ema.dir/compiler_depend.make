# Empty compiler generated dependencies file for ablation_ema.
# This may be replaced when dependencies are built.
