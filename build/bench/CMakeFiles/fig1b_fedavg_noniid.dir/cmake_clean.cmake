file(REMOVE_RECURSE
  "CMakeFiles/fig1b_fedavg_noniid.dir/fig1b_fedavg_noniid.cpp.o"
  "CMakeFiles/fig1b_fedavg_noniid.dir/fig1b_fedavg_noniid.cpp.o.d"
  "fig1b_fedavg_noniid"
  "fig1b_fedavg_noniid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1b_fedavg_noniid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
