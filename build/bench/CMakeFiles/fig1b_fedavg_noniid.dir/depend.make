# Empty dependencies file for fig1b_fedavg_noniid.
# This may be replaced when dependencies are built.
