# Empty dependencies file for fig3_grad_kde.
# This may be replaced when dependencies are built.
