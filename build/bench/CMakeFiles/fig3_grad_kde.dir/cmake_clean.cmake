file(REMOVE_RECURSE
  "CMakeFiles/fig3_grad_kde.dir/fig3_grad_kde.cpp.o"
  "CMakeFiles/fig3_grad_kde.dir/fig3_grad_kde.cpp.o.d"
  "fig3_grad_kde"
  "fig3_grad_kde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_grad_kde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
