file(REMOVE_RECURSE
  "CMakeFiles/fig8a_gradchange_overhead.dir/fig8a_gradchange_overhead.cpp.o"
  "CMakeFiles/fig8a_gradchange_overhead.dir/fig8a_gradchange_overhead.cpp.o.d"
  "fig8a_gradchange_overhead"
  "fig8a_gradchange_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_gradchange_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
