# Empty dependencies file for fig8a_gradchange_overhead.
# This may be replaced when dependencies are built.
