# Empty compiler generated dependencies file for fig12_injection_noniid.
# This may be replaced when dependencies are built.
