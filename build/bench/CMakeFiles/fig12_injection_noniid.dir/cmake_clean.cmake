file(REMOVE_RECURSE
  "CMakeFiles/fig12_injection_noniid.dir/fig12_injection_noniid.cpp.o"
  "CMakeFiles/fig12_injection_noniid.dir/fig12_injection_noniid.cpp.o.d"
  "fig12_injection_noniid"
  "fig12_injection_noniid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_injection_noniid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
