file(REMOVE_RECURSE
  "CMakeFiles/fig10_ga_vs_pa.dir/fig10_ga_vs_pa.cpp.o"
  "CMakeFiles/fig10_ga_vs_pa.dir/fig10_ga_vs_pa.cpp.o.d"
  "fig10_ga_vs_pa"
  "fig10_ga_vs_pa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ga_vs_pa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
