# Empty compiler generated dependencies file for fig10_ga_vs_pa.
# This may be replaced when dependencies are built.
