# Empty dependencies file for ablation_sync_rule.
# This may be replaced when dependencies are built.
