file(REMOVE_RECURSE
  "CMakeFiles/ablation_sync_rule.dir/ablation_sync_rule.cpp.o"
  "CMakeFiles/ablation_sync_rule.dir/ablation_sync_rule.cpp.o.d"
  "ablation_sync_rule"
  "ablation_sync_rule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sync_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
