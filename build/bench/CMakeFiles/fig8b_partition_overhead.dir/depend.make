# Empty dependencies file for fig8b_partition_overhead.
# This may be replaced when dependencies are built.
