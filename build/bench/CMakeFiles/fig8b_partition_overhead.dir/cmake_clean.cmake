file(REMOVE_RECURSE
  "CMakeFiles/fig8b_partition_overhead.dir/fig8b_partition_overhead.cpp.o"
  "CMakeFiles/fig8b_partition_overhead.dir/fig8b_partition_overhead.cpp.o.d"
  "fig8b_partition_overhead"
  "fig8b_partition_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_partition_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
