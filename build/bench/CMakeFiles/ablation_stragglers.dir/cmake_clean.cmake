file(REMOVE_RECURSE
  "CMakeFiles/ablation_stragglers.dir/ablation_stragglers.cpp.o"
  "CMakeFiles/ablation_stragglers.dir/ablation_stragglers.cpp.o.d"
  "ablation_stragglers"
  "ablation_stragglers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stragglers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
