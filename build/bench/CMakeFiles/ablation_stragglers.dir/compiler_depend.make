# Empty compiler generated dependencies file for ablation_stragglers.
# This may be replaced when dependencies are built.
