# Empty compiler generated dependencies file for fig4_hessian_vs_variance.
# This may be replaced when dependencies are built.
