file(REMOVE_RECURSE
  "CMakeFiles/fig9_seldp_vs_defdp.dir/fig9_seldp_vs_defdp.cpp.o"
  "CMakeFiles/fig9_seldp_vs_defdp.dir/fig9_seldp_vs_defdp.cpp.o.d"
  "fig9_seldp_vs_defdp"
  "fig9_seldp_vs_defdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_seldp_vs_defdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
