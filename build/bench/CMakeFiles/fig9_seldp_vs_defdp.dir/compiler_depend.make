# Empty compiler generated dependencies file for fig9_seldp_vs_defdp.
# This may be replaced when dependencies are built.
