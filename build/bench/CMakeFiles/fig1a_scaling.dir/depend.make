# Empty dependencies file for fig1a_scaling.
# This may be replaced when dependencies are built.
