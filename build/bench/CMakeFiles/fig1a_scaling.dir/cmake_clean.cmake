file(REMOVE_RECURSE
  "CMakeFiles/fig1a_scaling.dir/fig1a_scaling.cpp.o"
  "CMakeFiles/fig1a_scaling.dir/fig1a_scaling.cpp.o.d"
  "fig1a_scaling"
  "fig1a_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1a_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
