# Empty dependencies file for fig6_delta_dial.
# This may be replaced when dependencies are built.
