file(REMOVE_RECURSE
  "CMakeFiles/fig6_delta_dial.dir/fig6_delta_dial.cpp.o"
  "CMakeFiles/fig6_delta_dial.dir/fig6_delta_dial.cpp.o.d"
  "fig6_delta_dial"
  "fig6_delta_dial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_delta_dial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
