# Empty dependencies file for fig2_batchsize.
# This may be replaced when dependencies are built.
