file(REMOVE_RECURSE
  "CMakeFiles/fig2_batchsize.dir/fig2_batchsize.cpp.o"
  "CMakeFiles/fig2_batchsize.dir/fig2_batchsize.cpp.o.d"
  "fig2_batchsize"
  "fig2_batchsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_batchsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
