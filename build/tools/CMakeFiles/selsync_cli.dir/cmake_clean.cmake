file(REMOVE_RECURSE
  "CMakeFiles/selsync_cli.dir/selsync_cli.cpp.o"
  "CMakeFiles/selsync_cli.dir/selsync_cli.cpp.o.d"
  "selsync_cli"
  "selsync_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selsync_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
