# Empty dependencies file for selsync_cli.
# This may be replaced when dependencies are built.
