file(REMOVE_RECURSE
  "CMakeFiles/selsync_sweep.dir/selsync_sweep.cpp.o"
  "CMakeFiles/selsync_sweep.dir/selsync_sweep.cpp.o.d"
  "selsync_sweep"
  "selsync_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selsync_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
