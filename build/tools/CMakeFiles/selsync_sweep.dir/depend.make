# Empty dependencies file for selsync_sweep.
# This may be replaced when dependencies are built.
