
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/comm/barrier_test.cpp" "tests/CMakeFiles/test_comm.dir/comm/barrier_test.cpp.o" "gcc" "tests/CMakeFiles/test_comm.dir/comm/barrier_test.cpp.o.d"
  "/root/repo/tests/comm/channel_test.cpp" "tests/CMakeFiles/test_comm.dir/comm/channel_test.cpp.o" "gcc" "tests/CMakeFiles/test_comm.dir/comm/channel_test.cpp.o.d"
  "/root/repo/tests/comm/cluster_test.cpp" "tests/CMakeFiles/test_comm.dir/comm/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/test_comm.dir/comm/cluster_test.cpp.o.d"
  "/root/repo/tests/comm/collectives_test.cpp" "tests/CMakeFiles/test_comm.dir/comm/collectives_test.cpp.o" "gcc" "tests/CMakeFiles/test_comm.dir/comm/collectives_test.cpp.o.d"
  "/root/repo/tests/comm/cost_model_test.cpp" "tests/CMakeFiles/test_comm.dir/comm/cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_comm.dir/comm/cost_model_test.cpp.o.d"
  "/root/repo/tests/comm/fault_injector_test.cpp" "tests/CMakeFiles/test_comm.dir/comm/fault_injector_test.cpp.o" "gcc" "tests/CMakeFiles/test_comm.dir/comm/fault_injector_test.cpp.o.d"
  "/root/repo/tests/comm/network_sim_test.cpp" "tests/CMakeFiles/test_comm.dir/comm/network_sim_test.cpp.o" "gcc" "tests/CMakeFiles/test_comm.dir/comm/network_sim_test.cpp.o.d"
  "/root/repo/tests/comm/parameter_server_test.cpp" "tests/CMakeFiles/test_comm.dir/comm/parameter_server_test.cpp.o" "gcc" "tests/CMakeFiles/test_comm.dir/comm/parameter_server_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/selsync_core.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/selsync_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/selsync_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/selsync_data.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/selsync_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/selsync_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/selsync_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/selsync_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
