file(REMOVE_RECURSE
  "CMakeFiles/test_comm.dir/comm/barrier_test.cpp.o"
  "CMakeFiles/test_comm.dir/comm/barrier_test.cpp.o.d"
  "CMakeFiles/test_comm.dir/comm/channel_test.cpp.o"
  "CMakeFiles/test_comm.dir/comm/channel_test.cpp.o.d"
  "CMakeFiles/test_comm.dir/comm/cluster_test.cpp.o"
  "CMakeFiles/test_comm.dir/comm/cluster_test.cpp.o.d"
  "CMakeFiles/test_comm.dir/comm/collectives_test.cpp.o"
  "CMakeFiles/test_comm.dir/comm/collectives_test.cpp.o.d"
  "CMakeFiles/test_comm.dir/comm/cost_model_test.cpp.o"
  "CMakeFiles/test_comm.dir/comm/cost_model_test.cpp.o.d"
  "CMakeFiles/test_comm.dir/comm/fault_injector_test.cpp.o"
  "CMakeFiles/test_comm.dir/comm/fault_injector_test.cpp.o.d"
  "CMakeFiles/test_comm.dir/comm/network_sim_test.cpp.o"
  "CMakeFiles/test_comm.dir/comm/network_sim_test.cpp.o.d"
  "CMakeFiles/test_comm.dir/comm/parameter_server_test.cpp.o"
  "CMakeFiles/test_comm.dir/comm/parameter_server_test.cpp.o.d"
  "test_comm"
  "test_comm.pdb"
  "test_comm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
