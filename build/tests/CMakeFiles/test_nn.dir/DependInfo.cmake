
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/activations_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/activations_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/activations_test.cpp.o.d"
  "/root/repo/tests/nn/attention_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/attention_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/attention_test.cpp.o.d"
  "/root/repo/tests/nn/batchnorm_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/batchnorm_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/batchnorm_test.cpp.o.d"
  "/root/repo/tests/nn/conv_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/conv_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/conv_test.cpp.o.d"
  "/root/repo/tests/nn/eval_report_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/eval_report_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/eval_report_test.cpp.o.d"
  "/root/repo/tests/nn/gradcheck_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/gradcheck_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/gradcheck_test.cpp.o.d"
  "/root/repo/tests/nn/linear_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/linear_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/linear_test.cpp.o.d"
  "/root/repo/tests/nn/loss_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/loss_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/loss_test.cpp.o.d"
  "/root/repo/tests/nn/model_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/model_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/model_test.cpp.o.d"
  "/root/repo/tests/nn/models_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/models_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/models_test.cpp.o.d"
  "/root/repo/tests/nn/norm_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/norm_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/norm_test.cpp.o.d"
  "/root/repo/tests/nn/paper_profiles_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/paper_profiles_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/paper_profiles_test.cpp.o.d"
  "/root/repo/tests/nn/pooling_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/pooling_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/pooling_test.cpp.o.d"
  "/root/repo/tests/nn/summary_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/summary_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/summary_test.cpp.o.d"
  "/root/repo/tests/nn/transformer_test.cpp" "tests/CMakeFiles/test_nn.dir/nn/transformer_test.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/transformer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/selsync_core.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/selsync_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/selsync_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/selsync_data.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/selsync_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/selsync_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/selsync_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/selsync_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
