file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/checkpoint_test.cpp.o"
  "CMakeFiles/test_core.dir/core/checkpoint_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/compression_test.cpp.o"
  "CMakeFiles/test_core.dir/core/compression_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/config_test.cpp.o"
  "CMakeFiles/test_core.dir/core/config_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/easgd_test.cpp.o"
  "CMakeFiles/test_core.dir/core/easgd_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/heterogeneity_test.cpp.o"
  "CMakeFiles/test_core.dir/core/heterogeneity_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/metrics_test.cpp.o"
  "CMakeFiles/test_core.dir/core/metrics_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/run_record_test.cpp.o"
  "CMakeFiles/test_core.dir/core/run_record_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/strategies_test.cpp.o"
  "CMakeFiles/test_core.dir/core/strategies_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/sync_policy_test.cpp.o"
  "CMakeFiles/test_core.dir/core/sync_policy_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/time_model_test.cpp.o"
  "CMakeFiles/test_core.dir/core/time_model_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/trainer_test.cpp.o"
  "CMakeFiles/test_core.dir/core/trainer_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/workloads_test.cpp.o"
  "CMakeFiles/test_core.dir/core/workloads_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
