
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/checkpoint_test.cpp" "tests/CMakeFiles/test_core.dir/core/checkpoint_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/checkpoint_test.cpp.o.d"
  "/root/repo/tests/core/compression_test.cpp" "tests/CMakeFiles/test_core.dir/core/compression_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/compression_test.cpp.o.d"
  "/root/repo/tests/core/config_test.cpp" "tests/CMakeFiles/test_core.dir/core/config_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/config_test.cpp.o.d"
  "/root/repo/tests/core/easgd_test.cpp" "tests/CMakeFiles/test_core.dir/core/easgd_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/easgd_test.cpp.o.d"
  "/root/repo/tests/core/heterogeneity_test.cpp" "tests/CMakeFiles/test_core.dir/core/heterogeneity_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/heterogeneity_test.cpp.o.d"
  "/root/repo/tests/core/metrics_test.cpp" "tests/CMakeFiles/test_core.dir/core/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/metrics_test.cpp.o.d"
  "/root/repo/tests/core/run_record_test.cpp" "tests/CMakeFiles/test_core.dir/core/run_record_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/run_record_test.cpp.o.d"
  "/root/repo/tests/core/strategies_test.cpp" "tests/CMakeFiles/test_core.dir/core/strategies_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/strategies_test.cpp.o.d"
  "/root/repo/tests/core/sync_policy_test.cpp" "tests/CMakeFiles/test_core.dir/core/sync_policy_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/sync_policy_test.cpp.o.d"
  "/root/repo/tests/core/time_model_test.cpp" "tests/CMakeFiles/test_core.dir/core/time_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/time_model_test.cpp.o.d"
  "/root/repo/tests/core/trainer_test.cpp" "tests/CMakeFiles/test_core.dir/core/trainer_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/trainer_test.cpp.o.d"
  "/root/repo/tests/core/workloads_test.cpp" "tests/CMakeFiles/test_core.dir/core/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/selsync_core.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/selsync_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/selsync_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/selsync_data.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/selsync_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/selsync_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/selsync_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/selsync_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
